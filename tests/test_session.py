"""Tests for the Session facade and the pluggable engine roles."""

import pytest

import repro
from repro import EngineConfig, Session
from repro.core.interfaces import RegistryExecutor, StepExecution
from repro.llm.brain import SimulatedBrain
from repro.operators.base import DEFAULT_REGISTRY

QUERY = "How many players are taller than 200?"
BATCH = [QUERY, "Who is the tallest player?", QUERY,
         "Plot the average height of players per position."]


def test_session_loads_lake_by_name():
    session = Session("rotowire")
    result = session.query(QUERY)
    assert result.ok and result.kind == "value"


def test_session_query_and_batch_share_caches(rotowire_lake):
    session = Session(rotowire_lake)
    first = session.query(QUERY)
    assert first.ok and not first.telemetry.plan_cache_hit
    second = session.query(QUERY)
    assert second.ok and second.telemetry.plan_cache_hit
    # .batch rides the same plan cache.
    report = session.batch([QUERY, QUERY])
    assert report.cache_hits == 2 and report.cache_misses == 0


def test_session_batch_parallel_matches_serial(rotowire_lake):
    serial = Session(rotowire_lake).batch(BATCH)
    parallel = Session(rotowire_lake).batch(BATCH, workers=3)
    assert serial.num_errors == parallel.num_errors == 0
    for mine, theirs in zip(parallel.results, serial.results):
        assert mine.describe() == theirs.describe()


def test_session_engine_pool_is_reused(rotowire_lake):
    session = Session(rotowire_lake)
    session.batch(BATCH, workers=2)
    engines_after_two = list(session._engines)
    assert len(engines_after_two) == 2
    session.batch(BATCH, workers=2)
    assert session._engines == engines_after_two  # no new engines
    session.batch(BATCH[:1], workers=4)
    assert session._engines[:2] == engines_after_two  # pool only grows


def test_session_config_and_brain_are_honoured(rotowire_lake):
    session = Session(rotowire_lake, brain=SimulatedBrain(),
                      config=EngineConfig(use_discovery=False))
    result = session.query(QUERY)
    assert result.ok
    assert result.trace.timings.get("discovery", 0.0) == 0.0
    assert "discovery" not in session.last_transcript.labels()


def test_session_last_transcript_records_phases(rotowire_lake):
    session = Session(rotowire_lake)
    session.query(QUERY)
    labels = session.last_transcript.labels()
    assert "discovery" in labels
    assert "planning" in labels
    assert any(label.startswith("mapping:") for label in labels)


def test_session_rejects_non_positive_workers(rotowire_lake):
    with pytest.raises(ValueError):
        Session(rotowire_lake).batch(BATCH, workers=0)


class _SpyExecutor(RegistryExecutor):
    """Counts executions — a stand-in for a custom execution backend."""

    def __init__(self):
        super().__init__(DEFAULT_REGISTRY.copy())
        self.executed: list[str] = []

    def execute(self, decision, context) -> StepExecution:
        execution = super().execute(decision, context)
        self.executed.append(execution.operator)
        return execution


def test_session_accepts_custom_executor(rotowire_lake):
    executor = _SpyExecutor()
    session = Session(rotowire_lake, executor=executor)
    result = session.query(QUERY)
    assert result.ok
    assert executor.executed == result.trace.operators_used()


def test_session_bench_runs_over_own_lake(rotowire_lake):
    record = Session(rotowire_lake).bench(workers=(1,), repeats=1)
    assert record["dataset"] == "rotowire"
    assert record["scale"] is None  # the lake was provided, not generated
    assert [run["workers"] for run in record["runs"]] == [1]
    for run in record["runs"]:
        assert run["cold"]["errors"] == 0
        assert run["warm"]["plan_cache"]["hit_rate"] == 1.0


def test_public_surface_exports():
    for name in ("Session", "EngineConfig", "load_lake", "QueryResult",
                 "PlanTrace", "BatchReport", "PlanCache", "Table",
                 "PlotSpec", "Planner", "Mapper", "Executor"):
        assert hasattr(repro, name), name
    assert isinstance(repro.__version__, str) and repro.__version__


def test_session_bench_uses_session_stack(rotowire_lake):
    executor = _SpyExecutor()
    session = Session(rotowire_lake, executor=executor)
    record = session.bench(workers=(1,), repeats=1)
    # The benchmark's child sessions ran through the session's executor.
    assert executor.executed
    assert record["llm_latency_ms"] is None  # session brain, no override


def test_session_bench_rejects_latency_with_custom_planner(rotowire_lake):
    from repro.core.interfaces import PromptPlanner

    session = Session(rotowire_lake,
                      planner=PromptPlanner(SimulatedBrain()))
    with pytest.raises(ValueError):
        session.bench(workers=(1,), repeats=1, llm_latency_ms=10)

"""Back-compat: artifacts written before the columnar rewrite still load.

The golden fixtures under ``tests/fixtures/`` were captured from the
pre-columnar row store: table payloads (``Table.to_dict``), per-lake
fingerprints, plan/answer cache files, and raw cachenet frames.  The
columnar ``Table`` must load all of them losslessly and reproduce every
fingerprint byte-for-byte — that is what keeps warmed caches, cachenet
tiers, and archived reports valid across the storage rewrite.
"""

import json
import socket
from pathlib import Path

import pytest

from repro.cachenet.protocol import parse_cache_url, read_frame, write_frame
from repro.cachenet.server import CacheTierServer
from repro.core.answer_cache import AnswerCache
from repro.core.batch import PlanCache
from repro.data.table import Table
from repro.datasets import load_lake
from repro.session import Session

FIXTURES = Path(__file__).parent / "fixtures"


def fixture(name: str):
    return json.loads((FIXTURES / name).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Table payloads
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(fixture("v1_tables.json")))
def test_v1_table_payload_roundtrips_losslessly(name):
    golden = fixture("v1_tables.json")[name]
    table = Table.from_dict(golden["payload"])
    assert table.fingerprint() == golden["fingerprint"]
    # to_dict must reproduce the v1 payload byte-identically (including
    # tagged dates and images), so re-saved caches stay interchangeable.
    assert (json.dumps(table.to_dict(), sort_keys=True)
            == json.dumps(golden["payload"], sort_keys=True))


def test_v1_lake_fingerprints_are_reproduced():
    golden = fixture("v1_fingerprints.json")
    for dataset, expected in golden.items():
        lake = load_lake(dataset)
        assert lake.fingerprint() == expected["fingerprint"]
        assert (lake.content_fingerprint()
                == expected["content_fingerprint"])
        for name, fingerprint in expected["table_fingerprints"].items():
            assert lake.sources[name].table.fingerprint() == fingerprint, name


# ----------------------------------------------------------------------
# Cache files
# ----------------------------------------------------------------------


def test_v1_plan_cache_file_loads_and_hits():
    cache = PlanCache.load(FIXTURES / "v1_plan_cache.json")
    entries = fixture("v1_plan_cache.json")["entries"]
    assert len(cache) == len(entries) == 3
    queries = [entry["query"] for entry in entries]
    with Session("rotowire", plan_cache=cache) as session:
        report = session.batch(queries)
    assert report.num_errors == 0
    assert report.cache_misses == 0
    assert all(stat.plan_cache_hit for stat in report.stats)


def test_v1_plan_cache_resaves_identically(tmp_path):
    cache = PlanCache.load(FIXTURES / "v1_plan_cache.json")
    resaved = tmp_path / "resaved.json"
    cache.save(resaved)
    assert (json.loads(resaved.read_text())
            == fixture("v1_plan_cache.json"))


def test_v1_answer_cache_file_warms_a_session():
    cache = AnswerCache.load(FIXTURES / "v1_answer_cache.json")
    assert len(cache) == 120
    with Session("artwork", answer_cache=cache) as session:
        report = session.batch(["How many paintings are depicting a sword?"])
    assert report.num_errors == 0
    assert report.answer_misses == 0
    assert report.answer_hits > 0


# ----------------------------------------------------------------------
# Cachenet frames
# ----------------------------------------------------------------------


def test_v1_cachenet_frames_replay_against_a_live_tier():
    frames = fixture("v1_cachenet_frames.json")
    tier = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    try:
        family, address = parse_cache_url(tier.url)
        assert family == "tcp"
        with socket.create_connection(address) as sock:
            for frame in frames:
                write_frame(sock, frame)
                reply = read_frame(sock)
                assert reply["ok"], (frame, reply)
            # Every v1 put must be readable back, value-identical.
            for frame in frames:
                if frame["op"] != "put":
                    continue
                request = {"op": "get", "space": frame["space"],
                           "ns": frame.get("ns"), "key": frame["key"]}
                write_frame(sock, request)
                reply = read_frame(sock)
                assert reply["ok"] and reply["hit"], frame
                assert reply["value"] == frame["value"]
    finally:
        tier.stop()

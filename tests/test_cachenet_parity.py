"""The cache tier must be invisible in results across every backend.

Acceptance contract for the shared tier: serial, thread, and process
backends produce byte-identical canonical results whether ``cache_url``
is unset, points at a warm tier, or points at a server that dies
mid-run.  Warmth may only move time, never answers.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.benchmarks.workloads import workload
from repro.cachenet import CacheTierServer
from repro.datasets import load_lake
from repro.session import Session

BACKENDS = (("serial", 1), ("thread", 3), ("process", 3))


def canonical(report) -> str:
    return json.dumps(report.canonical_results(), sort_keys=True)


@pytest.fixture(scope="module")
def artwork_lake():
    # Shadows the conftest fixture: the process backend needs a lake
    # that carries its generation spec, which load_lake provides.
    return load_lake("artwork")


@pytest.fixture(scope="module")
def artwork_baseline(artwork_lake):
    """Canonical local-only serial results for the artwork workload."""
    queries = workload("artwork")
    with Session(artwork_lake) as session:
        report = session.batch(queries)
    assert report.num_errors == 0
    return queries, canonical(report)


@pytest.mark.parametrize("backend,workers", BACKENDS)
def test_warm_tier_parity_across_backends(artwork_lake, artwork_baseline,
                                          backend, workers):
    queries, baseline = artwork_baseline
    server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    try:
        with Session(artwork_lake, cache_url=server.url) as producer:
            producer.batch(queries)
        with Session(artwork_lake, cache_url=server.url) as session:
            report = session.batch(queries, workers=workers,
                                   backend=backend)
            counters = session.metrics()["counters"]
        assert canonical(report) == baseline
        assert report.num_errors == 0
        # The tier really served this run (directly, or through the
        # worker lanes whose counters merge back into the session's).
        assert counters.get("cachenet_hits", 0) >= 1
    finally:
        server.stop()


@pytest.mark.parametrize("backend,workers", (("serial", 1), ("thread", 3)))
def test_tier_killed_mid_run_parity(artwork_lake, artwork_baseline,
                                    backend, workers):
    queries, baseline = artwork_baseline
    server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    try:
        with Session(artwork_lake, cache_url=server.url) as producer:
            producer.batch(queries[:3])  # partially warm: the run must
            # survive losing a tier it was actively both hitting and
            # missing against.
        session = Session(artwork_lake, cache_url=server.url)
        client = session._cache_client
        client.retries = 0
        client.connect_timeout = 0.2
        client.request_timeout = 0.5
        client.down_cooldown = 30.0
        killer = threading.Timer(0.02, server.stop)
        killer.start()
        try:
            report = session.batch(queries, workers=workers,
                                   backend=backend)
        finally:
            killer.cancel()
        assert canonical(report) == baseline
        assert report.num_errors == 0
        session.close()
    finally:
        server.stop()  # idempotent; the timer usually won the race

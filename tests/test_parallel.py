"""Tests for the parallel batch runner and the thread-safe plan cache."""

import threading

import pytest

from repro import Session
from repro.core.batch import PlanCache
from repro.core.plan import LogicalPlan, LogicalStep
from test_batch import BATCH


def test_rejects_non_positive_workers(rotowire_lake):
    with pytest.raises(ValueError):
        Session(rotowire_lake).batch(BATCH[:1], workers=0)


def test_parallel_results_match_serial(rotowire_lake):
    serial = Session(rotowire_lake, plan_cache_size=32).batch(BATCH)
    parallel = Session(rotowire_lake, plan_cache_size=32).batch(BATCH,
                                                                workers=4)

    assert parallel.num_queries == serial.num_queries
    assert parallel.num_errors == serial.num_errors == 0
    # Reports are line-for-line comparable: submission order is preserved.
    for mine, theirs in zip(parallel.stats, serial.stats):
        assert mine.query == theirs.query
        assert mine.kind == theirs.kind
        assert mine.ok == theirs.ok
    for mine, theirs in zip(parallel.results, serial.results):
        assert mine.describe() == theirs.describe()
        if mine.kind == "value":
            assert mine.value == theirs.value


def test_parallel_cache_accounting(rotowire_lake):
    session = Session(rotowire_lake, plan_cache_size=32)
    report = session.batch(BATCH, workers=4)
    assert report.workers == 4
    # 5 distinct queries; with concurrent workers a distinct query may be
    # planned more than once (two workers miss before one publishes), but
    # never fewer, and all later repeats must hit.
    assert report.cache_misses >= 5
    assert report.cache_hits == len(BATCH) - report.cache_misses
    assert report.cache_hits + report.cache_misses == len(BATCH)
    # TextQA answers were memoized across queries.
    assert report.answer_hits + report.answer_misses > 0


def test_parallel_report_clocks(rotowire_lake):
    report = Session(rotowire_lake).batch(BATCH, workers=4)
    assert report.elapsed_seconds > 0.0
    assert report.wall_seconds > 0.0
    # Serial-equivalent seconds sum per-query totals and therefore cannot
    # undercut the real elapsed time by more than scheduling noise.
    assert report.queries_per_second == pytest.approx(
        len(BATCH) / report.elapsed_seconds)
    assert report.speedup == pytest.approx(
        report.wall_seconds / report.elapsed_seconds)


def test_serial_report_records_both_clocks(rotowire_lake):
    report = Session(rotowire_lake).batch(BATCH[:3])
    assert report.elapsed_seconds > 0.0
    # With one worker the two clocks agree up to bookkeeping overhead.
    assert report.wall_seconds <= report.elapsed_seconds
    assert report.workers == 1


def test_second_run_is_warm(rotowire_lake):
    session = Session(rotowire_lake)
    cold = session.batch(BATCH, workers=2)
    warm = session.batch(BATCH, workers=2)
    # Per-run accounting: the warm report counts only its own lookups.
    assert warm.cache_hits == len(BATCH)
    assert warm.cache_misses == 0
    assert warm.answer_misses == 0
    assert warm.answer_hits >= cold.answer_misses


def test_parallel_render_mentions_workers(rotowire_lake):
    report = Session(rotowire_lake).batch(BATCH[:3], workers=2)
    text = report.render()
    assert "2 worker(s)" in text
    assert "serial-equivalent" in text
    assert "answer cache" in text


def test_report_to_dict_shape(rotowire_lake):
    report = Session(rotowire_lake).batch(BATCH[:3], workers=2)
    record = report.to_dict()
    assert record["queries"] == 3
    assert record["workers"] == 2
    assert record["errors"] == 0
    assert set(record["stage_seconds"]) == {"discovery", "planning",
                                            "mapping", "execution"}
    for cache_key in ("plan_cache", "answer_cache"):
        assert set(record[cache_key]) == {"hits", "misses", "evictions",
                                          "hit_rate"}


def _plan(tag: str) -> LogicalPlan:
    return LogicalPlan(steps=[LogicalStep(index=1, description=tag)])


def test_plan_cache_survives_concurrent_hammering():
    cache = PlanCache(capacity=8)
    rounds = 300
    errors: list[Exception] = []

    def hammer(worker: int) -> None:
        try:
            for i in range(rounds):
                key = (f"q{i % 12}", "fp")
                if cache.get(key) is None:
                    cache.put(key, _plan(f"{worker}:{i}"))
        except Exception as exc:  # pragma: no cover - the test then fails
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert cache.hits + cache.misses == 8 * rounds
    assert len(cache) <= 8
    assert 0.0 <= cache.hit_rate <= 1.0


def test_plan_cache_snapshot_is_consistent_triple():
    cache = PlanCache(capacity=2)
    cache.put(("a", "fp"), _plan("a"))
    cache.get(("a", "fp"))
    cache.get(("b", "fp"))
    assert cache.snapshot() == (1, 1, 0)

"""AnswerCache.save/load and the --answer-cache-file CLI surface."""

import json
from datetime import date

import pytest

from repro.cli import main
from repro.core.answer_cache import ANSWER_CACHE_FORMAT, MISS, AnswerCache
from repro.session import Session

QUERY = "How many paintings are depicting a sword?"


def test_save_load_roundtrip(tmp_path):
    cache = AnswerCache(capacity=8)
    cache.put(("fp1", "what?", "int"), 3)
    cache.put(("fp2", "when?", "str"), date(1871, 3, 2))
    cache.put(("fp3", "says?", "str"), None)  # "the text does not say"
    cache.put(("fp4", "keep?", "select"), True)
    path = tmp_path / "answers.json"
    assert cache.save(path) == 4

    loaded = AnswerCache.load(path)
    assert len(loaded) == 4
    assert loaded.capacity == 8
    assert loaded.get(("fp1", "what?", "int")) == 3
    assert loaded.get(("fp2", "when?", "str")) == date(1871, 3, 2)
    assert loaded.get(("fp3", "says?", "str")) is None
    assert loaded.get(("fp3", "says?", "str")) is not MISS
    assert loaded.get(("fp4", "keep?", "select")) is True


def test_load_truncates_to_capacity_keeping_most_recent(tmp_path):
    cache = AnswerCache(capacity=8)
    for i in range(5):
        cache.put((f"fp{i}", "q", "int"), i)
    path = tmp_path / "answers.json"
    cache.save(path)
    loaded = AnswerCache.load(path, capacity=2)
    assert len(loaded) == 2
    assert loaded.get(("fp4", "q", "int")) == 4
    assert loaded.get(("fp0", "q", "int")) is MISS


def test_load_rejects_foreign_files(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"format": "something-else"}),
                    encoding="utf-8")
    with pytest.raises(ValueError) as excinfo:
        AnswerCache.load(path)
    assert "answer-cache" in str(excinfo.value)
    assert ANSWER_CACHE_FORMAT.startswith("repro-answer-cache")


def test_warm_answers_survive_session_restart(tmp_path):
    path = tmp_path / "answers.json"
    first = Session("artwork")
    result = first.query(QUERY)
    assert first.save_answer_cache(path) == len(first.answer_cache)
    assert len(first.answer_cache) > 0

    second = Session("artwork")
    assert second.load_answer_cache(path) == len(first.answer_cache)
    before = second.answer_cache.snapshot()
    warm = second.query(QUERY)
    hits, misses, _ = second.answer_cache.snapshot()
    assert warm.value == result.value
    assert hits - before[0] > 0
    assert misses - before[1] == 0  # fully warm: zero model inferences


def test_cli_answer_cache_file_roundtrip(tmp_path, capsys):
    batch = tmp_path / "queries.txt"
    batch.write_text(QUERY + "\n", encoding="utf-8")
    cache_file = tmp_path / "answers.json"

    assert main(["batch", "--dataset", "artwork", "--scale", "0.25",
                 str(batch), "--answer-cache-file", str(cache_file)]) == 0
    assert cache_file.exists()
    first = capsys.readouterr().out

    # Run 2 restarts onto the process backend: the persisted answers are
    # shipped into the worker lanes, so no modality model runs at all.
    assert main(["batch", "--dataset", "artwork", "--scale", "0.25",
                 str(batch), "--answer-cache-file", str(cache_file),
                 "--backend", "process"]) == 0
    second = capsys.readouterr().out
    # Run 1 misses every (painting, question) pair; run 2 is fully warm
    # from the persisted file.
    assert "answer cache: 0 hits" in first
    assert "0 misses" in second.split("answer cache:")[1].splitlines()[0]

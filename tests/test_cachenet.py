"""The shared cache tier: protocol framing, server ops, remote caches.

Server-side tests drive a real :class:`~repro.cachenet.CacheTierServer`
over real sockets (ephemeral TCP ports, plus one unix-socket case);
protocol tests use a plain ``socket.socketpair`` so framing is exercised
without a server at all.
"""

import json
import socket
import threading
import time

import pytest

from repro.cachenet import (CacheClient, CacheProtocolError,
                            CacheTierServer, CacheUnavailable, FrameError,
                            RemoteAnswerCache, RemotePlanCache,
                            parse_cache_url)
from repro.cachenet.protocol import (MAX_FRAME_BYTES, read_frame,
                                     write_frame)
from repro.core.answer_cache import MISS, AnswerCache
from repro.core.batch import PlanCache
from repro.core.plan import LogicalPlan
from repro.obs import MetricsRegistry
from repro.session import Session


@pytest.fixture()
def server():
    tier = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    yield tier
    tier.stop()


QUERY = "How many paintings are there?"


def _ipv6_loopback_available() -> bool:
    if not socket.has_ipv6:
        return False
    try:
        probe = socket.socket(socket.AF_INET6, socket.SOCK_STREAM)
        probe.bind(("::1", 0))
        probe.close()
        return True
    except OSError:
        return False


def make_plan(description="count paintings"):
    return LogicalPlan.from_dict({
        "thought": "one SQL aggregate does it",
        "steps": [{"index": 0, "description": description,
                   "inputs": ["paintings"], "output": "result",
                   "new_columns": [], "params": {}}],
    })


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        write_frame(a, {"op": "hello", "n": 1})
        assert read_frame(b) == {"op": "hello", "n": 1}
        a.close()
        assert read_frame(b) is None  # clean EOF at a frame boundary
        b.close()

    def test_eof_mid_frame_is_an_error(self):
        a, b = socket.socketpair()
        a.sendall(b"\x00\x00\x00\xff{\"tru")  # header promises 255 bytes
        a.close()
        with pytest.raises(FrameError, match="mid-frame|header and body"):
            read_frame(b)
        b.close()

    def test_non_object_and_non_json_frames_rejected(self):
        for body in (b"[1,2]", b"nonsense"):
            a, b = socket.socketpair()
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(FrameError):
                read_frame(b)
            a.close()
            b.close()

    def test_oversized_frame_rejected_without_reading_it(self):
        a, b = socket.socketpair()
        a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(FrameError, match="exceeds"):
            read_frame(b)
        a.close()
        b.close()

    def test_parse_cache_url_forms(self):
        assert parse_cache_url("unix:///tmp/x.sock") == \
            ("unix", "/tmp/x.sock")
        assert parse_cache_url("tcp://host:9") == ("tcp", ("host", 9))
        assert parse_cache_url("host:9") == ("tcp", ("host", 9))
        for bad in ("unix://", "nope", "host:notaport"):
            with pytest.raises(ValueError):
                parse_cache_url(bad)

    def test_parse_cache_url_ipv6_forms(self):
        # Bracketed IPv6 literals parse into the bare host; unbracketed
        # ones would mis-split into garbage, so they are rejected loudly
        # instead of failing later at connect time.
        assert parse_cache_url("tcp://[::1]:9009") == \
            ("tcp", ("::1", 9009))
        assert parse_cache_url("[fe80::2]:7") == ("tcp", ("fe80::2", 7))
        for bad in ("tcp://::1:9009", "tcp://[::1]9009", "tcp://[]:9"):
            with pytest.raises(ValueError, match="bracket"):
                parse_cache_url(bad)


# ----------------------------------------------------------------------
# Server operations
# ----------------------------------------------------------------------

class TestServerOps:
    def test_handshake_required_before_any_op(self, server):
        family, address = parse_cache_url(server.url)
        sock = socket.create_connection(address, timeout=5)
        write_frame(sock, {"op": "stats"})
        reply = read_frame(sock)
        assert reply["ok"] is False and "handshake" in reply["error"]
        sock.close()

    def test_plan_space_round_trip_and_stats(self, server):
        client = CacheClient(server.url)
        plan = make_plan()
        client.put_plan(ns="lake-fp", query=QUERY,
                        plan_dict=plan.to_dict())
        fetched = client.get_plan(ns="lake-fp", query=QUERY)
        assert fetched == plan.to_dict()
        assert client.get_plan(ns="other-fp", query=QUERY) is None
        stats = client.stats()
        assert stats["plan"]["entries"] == 1
        assert stats["plan"]["hits"] == 1 and stats["plan"]["misses"] == 1
        client.close()

    def test_answer_space_round_trips_typed_scalars(self, server):
        client = CacheClient(server.url)
        # None is a legitimate cached answer ("the text does not say").
        for value in (42, 1.5, "blue", None, True):
            key = ("fp", f"q-{value!r}", "any")
            client.put_answer(key, value)
            assert client.get_answer(key) == (True, value)
        assert client.get_answer(("fp", "never-asked", "any")) == \
            (False, None)
        client.close()

    def test_mget_mput_batch_round_trip(self, server):
        client = CacheClient(server.url)
        stored = client.mput("answer", [
            {"key": ["fp", f"q{i}", "int"], "value": i} for i in range(5)])
        assert stored == 5
        results = client.mget(
            "answer", [["fp", "q1", "int"], ["fp", "q9", "int"]])
        assert results[0] == {"ok": True, "hit": True, "value": 1}
        assert results[1] == {"ok": True, "hit": False}
        client.close()

    def test_invalidate_drops_exactly_one_lake_namespace(self, server):
        client = CacheClient(server.url)
        for ns in ("lake-a", "lake-b"):
            client.put_plan(ns=ns, query=QUERY,
                            plan_dict=make_plan().to_dict())
        assert client.invalidate_plans("lake-a") == 1
        assert client.get_plan(ns="lake-a", query=QUERY) is None
        assert client.get_plan(ns="lake-b", query=QUERY) is not None
        client.close()

    def test_lru_bound_evicts_oldest(self):
        server = CacheTierServer(bind="tcp://127.0.0.1:0",
                                 answer_capacity=3).start()
        try:
            client = CacheClient(server.url)
            for i in range(5):
                client.put_answer(("fp", f"q{i}", "int"), i)
            stats = client.stats()
            assert stats["answer"]["entries"] == 3
            assert stats["answer"]["evictions"] == 2
            assert client.get_answer(("fp", "q0", "int"))[0] is False
            assert client.get_answer(("fp", "q4", "int")) == (True, 4)
            client.close()
        finally:
            server.stop()

    def test_malformed_request_answers_instead_of_killing_connection(
            self, server):
        client = CacheClient(server.url)
        reply = client.request({"op": "get", "space": "plan"})  # no key/ns
        assert reply["ok"] is False and "bad get request" in reply["error"]
        reply = client.request({"op": "get", "space": "martian",
                                "ns": "x", "key": "y"})
        assert reply["ok"] is False
        reply = client.request({"op": "teleport"})
        assert reply["ok"] is False and "unknown op" in reply["error"]
        # The connection survived all three.
        assert client.stats()["protocol"] == "repro-cachenet/1"
        client.close()

    def test_put_validates_plan_payloads_at_the_wire(self, server):
        client = CacheClient(server.url)
        reply = client.request({"op": "put", "space": "plan", "ns": "x",
                                "key": "q",
                                "value": {"steps": [{"bogus": 1}]}})
        assert reply["ok"] is False
        assert client.stats()["plan"]["entries"] == 0
        client.close()

    def test_unexpected_validation_error_still_answers(self, server):
        client = CacheClient(server.url)
        # LogicalPlan.from_dict(None) raises AttributeError, outside the
        # KeyError/TypeError/ValueError family — the reply must still be
        # an error frame, not a dropped connection the client would burn
        # retries re-dialing.
        reply = client.request({"op": "put", "space": "plan", "ns": "x",
                                "key": "q", "value": None})
        assert reply["ok"] is False and "bad put request" in reply["error"]
        assert client.stats()["plan"]["entries"] == 0
        client.close()

    def test_oversized_request_fails_fast_and_keeps_connection(
            self, server):
        import repro.cachenet.protocol as protocol
        # Backoff chosen so any accidental retry blows the time budget.
        client = CacheClient(server.url, retries=2, backoff=5.0)
        client.ensure_connected()
        sock = client._sock
        original = protocol.MAX_FRAME_BYTES
        protocol.MAX_FRAME_BYTES = 64
        try:
            started = time.perf_counter()
            with pytest.raises(CacheUnavailable, match="frame limit"):
                client.request({"op": "put", "space": "answer",
                                "key": ["fp", "q", "str"],
                                "value": "x" * 200})
            assert time.perf_counter() - started < 1.0  # no retries
        finally:
            protocol.MAX_FRAME_BYTES = original
        # The healthy connection was kept, not dropped, and the client
        # was not marked down: the next request works immediately.
        assert client._sock is sock
        assert client.stats()["answer"]["entries"] == 0
        client.close()

    def test_wildcard_bind_renders_connectable_url(self):
        server = CacheTierServer(bind="tcp://0.0.0.0:0").start()
        try:
            # A client cannot dial a wildcard; url maps it to loopback.
            assert server.url.startswith("tcp://127.0.0.1:")
            client = CacheClient(server.url)
            client.ensure_connected()
            client.close()
        finally:
            server.stop()

    @pytest.mark.skipif(not _ipv6_loopback_available(),
                        reason="no IPv6 loopback on this host")
    def test_ipv6_bind_round_trip(self):
        server = CacheTierServer(bind="tcp://[::1]:0").start()
        try:
            assert server.url.startswith("tcp://[::1]:")
            client = CacheClient(server.url)
            client.put_answer(("fp", "q", "int"), 6)
            assert client.get_answer(("fp", "q", "int")) == (True, 6)
            client.close()
        finally:
            server.stop()

    def test_unix_socket_transport(self, tmp_path):
        path = tmp_path / "tier.sock"
        server = CacheTierServer(bind=f"unix://{path}").start()
        try:
            assert server.url == f"unix://{path}"
            client = CacheClient(server.url)
            client.put_answer(("fp", "q", "int"), 7)
            assert client.get_answer(("fp", "q", "int")) == (True, 7)
            client.close()
        finally:
            server.stop()
        assert not path.exists()  # socket file cleaned up


# ----------------------------------------------------------------------
# Persistence: the tier reuses the standard cache-file formats
# ----------------------------------------------------------------------

class TestPersistence:
    def test_flush_writes_standard_formats_loadable_by_local_caches(
            self, tmp_path):
        plan_file = tmp_path / "plans.json"
        answer_file = tmp_path / "answers.json"
        server = CacheTierServer(bind="tcp://127.0.0.1:0",
                                 plan_file=str(plan_file),
                                 answer_file=str(answer_file)).start()
        try:
            client = CacheClient(server.url)
            plan = make_plan()
            client.put_plan(ns="lake-fp", query=QUERY,
                            plan_dict=plan.to_dict())
            client.put_answer(("fp", "q", "int"), 3)
            reply = client.flush()
            reply.pop("server_ms", None)
            assert reply == {"ok": True, "plans": 1, "answers": 1}
            client.close()
        finally:
            server.stop()
        # The files are the v1 formats the process-local caches speak.
        plans = PlanCache.load(plan_file)
        assert plans.get((QUERY, "lake-fp")).to_dict() == plan.to_dict()
        answers = AnswerCache.load(answer_file)
        assert answers.get(("fp", "q", "int")) == 3

    def test_server_boots_warm_from_session_saved_files(self, tmp_path,
                                                        artwork_lake):
        plan_file = tmp_path / "plans.json"
        session = Session(artwork_lake)
        session.query("How many paintings are there?")
        assert session.save_plan_cache(plan_file) == 1
        session.close()
        server = CacheTierServer(bind="tcp://127.0.0.1:0",
                                 plan_file=str(plan_file)).start()
        try:
            client = CacheClient(server.url)
            assert client.stats()["plan"]["entries"] == 1
            fetched = client.get_plan(ns=artwork_lake.fingerprint(),
                                      query="How many paintings are there?")
            assert fetched is not None
            client.close()
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Remote drop-in caches
# ----------------------------------------------------------------------

class TestRemoteCaches:
    def test_local_front_absorbs_repeat_gets(self, server):
        client = CacheClient(server.url)
        cache = RemoteAnswerCache(client, capacity=8)
        cache.put(("fp", "q", "int"), 5)
        requests_after_put = server.stats()["requests_total"]
        for _ in range(10):
            assert cache.get(("fp", "q", "int")) == 5
        # All ten hits were absorbed locally; no further wire traffic.
        assert server.stats()["requests_total"] == requests_after_put
        client.close()

    def test_remote_hit_fills_local_front_and_counts_metrics(self, server):
        writer = RemoteAnswerCache(CacheClient(server.url), capacity=8)
        writer.put(("fp", "q", "int"), 5)
        metrics = MetricsRegistry()
        reader = RemoteAnswerCache(
            CacheClient(server.url, metrics=metrics), capacity=8,
            metrics=metrics)
        assert reader.get(("fp", "q", "int")) == 5   # tier hit
        assert reader.get(("fp", "q", "int")) == 5   # local hit
        assert reader.get(("fp", "other", "int")) is MISS
        counters = metrics.snapshot()["counters"]
        assert counters["cachenet_hits"] == 1
        assert counters["cachenet_misses"] == 1
        hist = metrics.snapshot()["histograms"]["cachenet_rpc_latency"]
        assert hist["count"] >= 2
        assert reader.hits == 2 and reader.misses == 1

    def test_remote_plan_cache_shares_plans_across_instances(self, server):
        plan = make_plan()
        key = (QUERY, "lake-fp")
        writer = RemotePlanCache(CacheClient(server.url), capacity=8)
        writer.put(key, plan)
        reader = RemotePlanCache(CacheClient(server.url), capacity=8)
        fetched = reader.get(key)
        assert fetched is not None
        assert fetched.to_dict() == plan.to_dict()
        assert reader.get(("unknown query", "lake-fp")) is None

    def test_remote_caches_save_in_standard_format(self, server, tmp_path):
        cache = RemoteAnswerCache(CacheClient(server.url), capacity=8)
        cache.put(("fp", "q", "int"), 5)
        path = tmp_path / "answers.json"
        assert cache.save(path) == 1
        assert json.loads(path.read_text())["format"] == \
            "repro-answer-cache/v1"
        assert AnswerCache.load(path).get(("fp", "q", "int")) == 5


# ----------------------------------------------------------------------
# Sessions sharing warmth through the tier
# ----------------------------------------------------------------------

class TestSessionIntegration:
    def test_second_session_starts_warm_from_the_tier(self, server,
                                                      artwork_lake):
        query = "How many paintings are there?"
        first = Session(artwork_lake, cache_url=server.url)
        first.query(query)
        first.close()

        second = Session(artwork_lake, cache_url=server.url)
        result = second.query(query)
        assert result.ok
        counters = second.metrics()["counters"]
        assert counters["cachenet_hits"] >= 1
        assert second.plan_cache.hits >= 1  # served through the drop-in
        second.close()

    def test_observability_snapshot_carries_server_stats(self, server,
                                                         artwork_lake):
        session = Session(artwork_lake, cache_url=server.url)
        session.query("How many paintings are there?")
        snapshot = session.observability_snapshot()
        assert snapshot["cachenet_server"]["plan"]["entries"] >= 1
        assert "cachenet_hit_rate" in snapshot["derived"]
        # The plain metrics snapshot stays purely local.
        assert "cachenet_server" not in session.metrics()
        session.close()

    def test_loaded_cache_files_are_published_to_the_tier(
            self, server, artwork_lake, tmp_path):
        query = "How many paintings are there?"
        producer = Session(artwork_lake)
        producer.query(query)
        plan_file = tmp_path / "plans.json"
        producer.save_plan_cache(plan_file)
        producer.close()

        publisher = Session(artwork_lake, cache_url=server.url)
        assert publisher.load_plan_cache(plan_file) == 1
        assert isinstance(publisher.plan_cache, RemotePlanCache)
        publisher.close()
        client = CacheClient(server.url)
        assert client.stats()["plan"]["entries"] == 1
        client.close()

    def test_publish_chunks_large_loaded_files(self, server, artwork_lake,
                                               tmp_path, monkeypatch):
        """A warm file bigger than one mput batch publishes as several
        bounded frames — never one frame over the protocol limit — and
        every entry still reaches the tier."""
        local = Session(artwork_lake)
        for i in range(40):
            local.answer_cache.put((f"fp{i}", "q", "int"), i)
        answer_file = tmp_path / "answers.json"
        assert local.save_answer_cache(answer_file) == 40
        local.close()

        monkeypatch.setattr(Session, "PUBLISH_BATCH_BYTES", 256)
        publisher = Session(artwork_lake, cache_url=server.url)
        batches = []
        original_mput = publisher._cache_client.mput

        def counting_mput(space, entries, ns=None):
            batches.append(len(entries))
            return original_mput(space, entries, ns=ns)

        monkeypatch.setattr(publisher._cache_client, "mput", counting_mput)
        assert publisher.load_answer_cache(answer_file) == 40
        publisher.close()
        assert len(batches) > 1    # chunked, not one oversized frame
        assert sum(batches) == 40  # nothing silently dropped
        client = CacheClient(server.url)
        assert client.stats()["answer"]["entries"] == 40
        client.close()

    def test_explicit_cache_instances_win_over_cache_url(self, server,
                                                         artwork_lake):
        local = PlanCache(4)
        session = Session(artwork_lake, cache_url=server.url,
                          plan_cache=local)
        assert session.plan_cache is local
        assert isinstance(session.answer_cache, RemoteAnswerCache)
        session.close()


# ----------------------------------------------------------------------
# Concurrency: many clients, one tier
# ----------------------------------------------------------------------

def test_concurrent_clients_hammering_one_server(server):
    errors = []

    def worker(worker_id: int) -> None:
        try:
            client = CacheClient(server.url)
            for i in range(20):
                key = ("fp", f"w{worker_id}-q{i}", "int")
                client.put_answer(key, i)
                assert client.get_answer(key) == (True, i)
            client.close()
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    stats = server.stats()
    assert stats["answer"]["hits"] == 160
    assert stats["connections_total"] == 8


def test_version_mismatch_closes_with_clear_error(server, monkeypatch):
    # Speak a bumped protocol version by patching the handshake frame the
    # client sends; the server must refuse and say which side to upgrade.
    import repro.cachenet.client as client_module
    monkeypatch.setattr(
        client_module, "hello_request",
        lambda: {"op": "hello", "protocol": "repro-cachenet",
                 "version": 999})
    client = CacheClient(server.url)
    with pytest.raises(CacheProtocolError, match="upgrade the older"):
        client.ensure_connected()
    # A protocol mismatch is terminal, not retried: the client closes.
    with pytest.raises(CacheUnavailable, match="closed"):
        client.request({"op": "stats"})

"""PlanCache.save/load: persisted plans survive runs and serve warm hits."""

import json

import pytest

from repro import Session
from repro.core.batch import PLAN_CACHE_FORMAT, PlanCache
from repro.core.plan import LogicalPlan, LogicalStep


def _plan(tag: str) -> LogicalPlan:
    return LogicalPlan(steps=[LogicalStep(index=1, description=tag,
                                          inputs=["t"], output="out")],
                       thought=tag)


def test_save_and_load_restore_entries(tmp_path):
    cache = PlanCache(capacity=8)
    cache.put(("q1", "fp"), _plan("one"))
    cache.put(("q2", "fp"), _plan("two"))
    path = tmp_path / "plans.json"
    assert cache.save(path) == 2

    restored = PlanCache.load(path)
    assert len(restored) == 2
    assert restored.capacity == 8
    assert restored.get(("q1", "fp")) == _plan("one")
    assert restored.get(("q2", "fp")) == _plan("two")
    assert restored.get(("q3", "fp")) is None
    # Counters start fresh: 2 hits + 1 miss from the lines above only.
    assert restored.snapshot() == (2, 1, 0)


def test_load_preserves_lru_order(tmp_path):
    cache = PlanCache(capacity=4)
    for tag in ("a", "b", "c"):
        cache.put((tag, "fp"), _plan(tag))
    cache.get(("a", "fp"))  # refresh "a": eviction order is now b, c, a
    path = tmp_path / "plans.json"
    cache.save(path)

    restored = PlanCache.load(path, capacity=3)
    restored.put(("d", "fp"), _plan("d"))  # evicts the oldest: "b"
    assert ("b", "fp") not in restored
    assert ("a", "fp") in restored and ("c", "fp") in restored


def test_load_clamps_to_capacity(tmp_path):
    cache = PlanCache(capacity=8)
    for i in range(6):
        cache.put((f"q{i}", "fp"), _plan(str(i)))
    path = tmp_path / "plans.json"
    cache.save(path)

    restored = PlanCache.load(path, capacity=2)
    assert len(restored) == 2
    # The two *most recent* entries survive.
    assert ("q4", "fp") in restored and ("q5", "fp") in restored


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "not-a-cache.json"
    path.write_text(json.dumps({"hello": "world"}), encoding="utf-8")
    with pytest.raises(ValueError):
        PlanCache.load(path)
    good = tmp_path / "cache.json"
    PlanCache(capacity=2).save(good)
    payload = json.loads(good.read_text(encoding="utf-8"))
    assert payload["format"] == PLAN_CACHE_FORMAT


def test_session_warm_hits_from_persisted_cache(tmp_path, rotowire_lake):
    queries = ["How many players are taller than 200?",
               "Who is the tallest player?"]
    path = tmp_path / "plans.json"

    first = Session(rotowire_lake)
    cold = first.batch(queries)
    assert cold.cache_misses == len(queries) and cold.cache_hits == 0
    assert first.save_plan_cache(path) == len(queries)

    # A brand-new session over the same lake starts 100% warm.
    second = Session(rotowire_lake, plan_cache=PlanCache.load(path))
    warm = second.batch(queries)
    assert warm.cache_hits == len(queries) and warm.cache_misses == 0
    assert warm.num_errors == 0
    for mine, theirs in zip(warm.results, cold.results):
        assert mine.describe() == theirs.describe()


def test_loaded_cache_never_hits_on_a_different_lake(tmp_path,
                                                     rotowire_lake,
                                                     artwork_lake):
    path = tmp_path / "plans.json"
    session = Session(rotowire_lake)
    session.batch(["How many players are taller than 200?"])
    session.save_plan_cache(path)

    other = Session(artwork_lake)
    loaded = other.load_plan_cache(path)
    assert loaded == 1
    report = other.batch(
        ["How many paintings belong to the 'Impressionism' movement?"])
    # Keys carry the lake fingerprint: a foreign cache is inert, not wrong.
    assert report.cache_hits == 0 and report.num_errors == 0


def test_session_load_plan_cache_capacity_override(tmp_path, rotowire_lake):
    session = Session(rotowire_lake)
    session.batch(["How many players are taller than 200?",
                   "Who is the tallest player?"])
    path = tmp_path / "plans.json"
    session.save_plan_cache(path)

    fresh = Session(rotowire_lake)
    assert fresh.load_plan_cache(path, capacity=1) == 1
    assert fresh.plan_cache.capacity == 1
    assert len(fresh.plan_cache) == 1


def test_cli_flagless_run_keeps_persisted_capacity(tmp_path, capsys):
    """A --plan-cache-file run without --cache-size must not truncate."""
    from repro.cli import main

    batch = tmp_path / "queries.txt"
    batch.write_text("How many players are taller than 200?\n"
                     "Who is the tallest player?\n", encoding="utf-8")
    path = tmp_path / "plans.json"
    assert main(["batch", "--dataset", "rotowire", str(batch),
                 "--cache-size", "512", "--plan-cache-file", str(path)]) == 0
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["capacity"] == 512 and len(payload["entries"]) == 2

    # No --cache-size: the file's capacity and entries are preserved.
    assert main(["batch", "--dataset", "rotowire", str(batch),
                 "--plan-cache-file", str(path)]) == 0
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["capacity"] == 512 and len(payload["entries"]) == 2
    assert "hit rate 100%" in capsys.readouterr().out

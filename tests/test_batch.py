"""Tests for the batch runner and the LRU plan cache."""

import pytest

from repro import Session
from repro.core.batch import PlanCache
from repro.core.plan import LogicalPlan, LogicalStep

BATCH = [
    "How many players are taller than 200?",
    "How many games did the Heat win?",
    "List the names of players taller than 200.",
    "Plot the average height of players per position.",
    "Who is the tallest player?",
    "How many players are taller than 200?",
    "How many games did the Heat win?",
    "Plot the average height of players per position.",
    "Who is the tallest player?",
    "List the names of players taller than 200.",
    "How many players are taller than 200?",
    "Who is the tallest player?",
]


def _plan(tag: str) -> LogicalPlan:
    return LogicalPlan(steps=[LogicalStep(index=1, description=tag)])


def test_cache_hits_and_misses():
    cache = PlanCache(capacity=4)
    assert cache.get(("q", "fp")) is None
    cache.put(("q", "fp"), _plan("a"))
    assert cache.get(("q", "fp")) is not None
    assert ("q", "fp") in cache
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5


def test_cache_is_keyed_on_fingerprint_too():
    cache = PlanCache(capacity=4)
    cache.put(("q", "fp1"), _plan("a"))
    assert cache.get(("q", "fp2")) is None


def test_cache_evicts_least_recently_used():
    cache = PlanCache(capacity=2)
    cache.put(("a", "fp"), _plan("a"))
    cache.put(("b", "fp"), _plan("b"))
    assert cache.get(("a", "fp")) is not None  # refresh "a"
    cache.put(("c", "fp"), _plan("c"))         # evicts "b"
    assert cache.evictions == 1
    assert ("b", "fp") not in cache
    assert ("a", "fp") in cache and ("c", "fp") in cache


def test_cache_rejects_non_positive_capacity():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)


def test_batch_runner_reports_cache_and_timings(rotowire_lake):
    session = Session(rotowire_lake, plan_cache_size=32)
    report = session.batch(BATCH)

    assert report.num_queries == len(BATCH) >= 10
    assert report.num_errors == 0, [s.query for s in report.stats
                                    if not s.ok]
    # 5 distinct queries, 7 repeats → the cache must have hit.
    assert report.cache_misses == 5
    assert report.cache_hits == 7
    assert report.cache_hit_rate > 0.5
    assert [s.plan_cache_hit for s in report.stats[:5]] == [False] * 5
    assert all(s.plan_cache_hit for s in report.stats[5:])
    # Per-stage wall clock is accounted for.
    for stage in ("discovery", "planning", "mapping", "execution"):
        assert stage in report.timings
        assert report.timings[stage] >= 0.0
    assert report.wall_seconds > 0.0
    assert report.total_steps == sum(s.steps for s in report.stats) > 0


def test_batch_report_renders_summary(rotowire_lake):
    session = Session(rotowire_lake, plan_cache_size=32)
    report = session.batch(BATCH[:3])
    text = report.render()
    assert "plan cache" in text
    assert "per-stage wall clock" in text
    assert "execution" in text
    for stat in report.stats:
        assert stat.query in text

"""Smoke tests for the benchmark harness (kept tiny and latency-free)."""

import json

import pytest

from repro.benchmarks import BenchConfig, run_benchmark, workload
from repro.benchmarks.harness import _parse_workers
from repro.benchmarks.workloads import (RELATIONAL_WORKLOADS, WORKLOADS,
                                        workload_names)


def test_workload_repeats_fixed_list():
    unique = WORKLOADS["artwork"]
    assert workload("artwork", repeats=2) == list(unique) * 2


def test_workload_rejects_unknown_dataset_and_bad_repeats():
    with pytest.raises(KeyError):
        workload("nope")
    with pytest.raises(ValueError):
        workload("artwork", repeats=0)
    with pytest.raises(KeyError):
        workload("artwork", name="nope")


def test_relational_workload_family():
    assert workload_names() == ("relational", "standard")
    assert (workload("rotowire", repeats=2, name="relational")
            == list(RELATIONAL_WORKLOADS["rotowire"]) * 2)
    # The relational family is the storage-bound profile: every query
    # must avoid the modality operators (VQA / TextQA / plot).
    for queries in RELATIONAL_WORKLOADS.values():
        for query in queries:
            assert "depicting" not in query.lower(), query
            assert not query.lower().startswith("plot"), query


def test_parse_workers():
    assert _parse_workers("1,2,4") == (1, 2, 4)
    with pytest.raises(SystemExit):
        _parse_workers("one")
    with pytest.raises(SystemExit):
        _parse_workers(",")


def test_config_validation():
    with pytest.raises(ValueError):
        BenchConfig(workers=())
    with pytest.raises(ValueError):
        BenchConfig(workers=(0,))
    with pytest.raises(ValueError):
        BenchConfig(backends=())
    with pytest.raises(ValueError):
        BenchConfig(backends=("warp-drive",))
    with pytest.raises(ValueError):
        BenchConfig(llm_latency_ms=-1)
    with pytest.raises(ValueError):
        BenchConfig(repeats=0)
    with pytest.raises(ValueError):
        BenchConfig(scale=0)
    with pytest.raises(ValueError):
        BenchConfig(workload_name="nope")
    with pytest.raises(ValueError):
        BenchConfig(store="parquet")
    with pytest.raises(ValueError):
        BenchConfig(engine="duckdb")
    with pytest.raises(ValueError):
        BenchConfig(baseline_store="parquet")


def test_bench_cli_rejects_bad_repeats(capsys):
    from repro.cli import main
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--repeats", "0"])
    assert excinfo.value.code == 2
    assert "positive" in capsys.readouterr().err


def test_run_benchmark_emits_record_and_json(tmp_path):
    output = tmp_path / "BENCH_parallel.json"
    config = BenchConfig(dataset="artwork", scale=0.25, workers=(1, 2),
                         repeats=1, llm_latency_ms=0.0,
                         output=str(output), quiet=True)
    record = run_benchmark(config)

    assert output.exists()
    assert json.loads(output.read_text(encoding="utf-8")) == record

    assert record["benchmark"] == "parallel_batch"
    assert record["dataset"] == "artwork"
    assert record["lake_rows"]["paintings_metadata"] == 30
    assert record["queries_per_run"] == len(WORKLOADS["artwork"])
    assert record["backends"] == ["thread"]
    assert record["cpu_count"] >= 1
    assert [run["workers"] for run in record["runs"]] == [1, 2]
    assert all(run["backend"] == "thread" for run in record["runs"])
    for run in record["runs"]:
        for pass_name in ("cold", "warm"):
            metrics = run[pass_name]
            assert metrics["errors"] == 0, metrics
            assert metrics["elapsed_seconds"] > 0.0
            assert metrics["queries_per_second"] > 0.0
        # The warm pass rides the caches populated by the cold pass.
        assert run["warm"]["plan_cache"]["hit_rate"] == 1.0
        assert run["warm"]["answer_cache"]["misses"] == 0
    curve = record["warm_speedup_vs_1_worker"]["thread"]
    assert "2" in curve
    assert curve["1"] == 1.0


def test_run_benchmark_without_output_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    config = BenchConfig(dataset="rotowire", scale=0.1, workers=(1,),
                         repeats=1, llm_latency_ms=0.0, output=None,
                         quiet=True)
    record = run_benchmark(config)
    assert record["runs"]
    assert not list(tmp_path.iterdir())


def test_run_benchmark_multi_backend_curves(tmp_path):
    config = BenchConfig(dataset="rotowire", scale=0.1, workers=(1, 2),
                         backends=("serial", "process"), repeats=1,
                         llm_latency_ms=0.0, output=None, quiet=True)
    record = run_benchmark(config)
    assert [(run["backend"], run["workers"]) for run in record["runs"]] == [
        ("serial", 1), ("serial", 2), ("process", 1), ("process", 2)]
    assert set(record["warm_speedup_vs_1_worker"]) == {"serial", "process"}
    for run in record["runs"]:
        assert run["cold"]["errors"] == 0
        assert run["warm"]["errors"] == 0
        assert run["cold"]["backend"] == run["backend"]
    # A process worker's local caches must warm up exactly like the
    # shared serial cache does (deterministic query->lane affinity).
    process_warm = [run["warm"] for run in record["runs"]
                    if run["backend"] == "process"]
    for metrics in process_warm:
        assert metrics["plan_cache"]["hit_rate"] == 1.0
        assert metrics["answer_cache"]["misses"] == 0


def test_run_benchmark_store_baseline_leg():
    from repro.data.columns import table_store
    config = BenchConfig(dataset="rotowire", scale=0.2, workers=(1,),
                         repeats=1, llm_latency_ms=0.0, output=None,
                         workload_name="relational", baseline_store="row",
                         quiet=True)
    record = run_benchmark(config)
    assert record["workload"] == "relational"
    assert record["table_store"] == "columnar"
    assert record["relational_engine"] == "columnar"
    baseline = record["baseline"]
    assert baseline["table_store"] == "row"
    assert baseline["relational_engine"] == "sqlite"
    # Same lake either way: the store is not part of the fingerprint.
    assert baseline["lake_fingerprint"] == record["lake_fingerprint"]
    for run in baseline["runs"]:
        assert run["cold"]["errors"] == 0
        assert run["warm"]["errors"] == 0
    assert record["warm_speedup_vs_baseline"]["thread"]["1"] > 0
    # The store/engine pins must not leak out of the run.
    assert table_store() == "columnar"


def test_run_benchmark_rejects_baseline_with_provided_lake():
    from repro.datasets import load_lake
    config = BenchConfig(dataset="rotowire", scale=0.1, workers=(1,),
                         repeats=1, llm_latency_ms=0.0, output=None,
                         baseline_store="row", quiet=True)
    with pytest.raises(ValueError):
        run_benchmark(config, lake=load_lake("rotowire", scale=0.1))

"""Smoke tests for the benchmark harness (kept tiny and latency-free)."""

import json

import pytest

from repro.benchmarks import BenchConfig, run_benchmark, workload
from repro.benchmarks.harness import _parse_workers
from repro.benchmarks.workloads import WORKLOADS


def test_workload_repeats_fixed_list():
    unique = WORKLOADS["artwork"]
    assert workload("artwork", repeats=2) == list(unique) * 2


def test_workload_rejects_unknown_dataset_and_bad_repeats():
    with pytest.raises(KeyError):
        workload("nope")
    with pytest.raises(ValueError):
        workload("artwork", repeats=0)


def test_parse_workers():
    assert _parse_workers("1,2,4") == (1, 2, 4)
    with pytest.raises(SystemExit):
        _parse_workers("one")
    with pytest.raises(SystemExit):
        _parse_workers(",")


def test_config_validation():
    with pytest.raises(ValueError):
        BenchConfig(workers=())
    with pytest.raises(ValueError):
        BenchConfig(workers=(0,))
    with pytest.raises(ValueError):
        BenchConfig(llm_latency_ms=-1)
    with pytest.raises(ValueError):
        BenchConfig(repeats=0)
    with pytest.raises(ValueError):
        BenchConfig(scale=0)


def test_bench_cli_rejects_bad_repeats(capsys):
    from repro.cli import main
    with pytest.raises(SystemExit) as excinfo:
        main(["bench", "--repeats", "0"])
    assert excinfo.value.code == 2
    assert "positive" in capsys.readouterr().err


def test_run_benchmark_emits_record_and_json(tmp_path):
    output = tmp_path / "BENCH_parallel.json"
    config = BenchConfig(dataset="artwork", scale=0.25, workers=(1, 2),
                         repeats=1, llm_latency_ms=0.0,
                         output=str(output), quiet=True)
    record = run_benchmark(config)

    assert output.exists()
    assert json.loads(output.read_text(encoding="utf-8")) == record

    assert record["benchmark"] == "parallel_batch"
    assert record["dataset"] == "artwork"
    assert record["lake_rows"]["paintings_metadata"] == 30
    assert record["queries_per_run"] == len(WORKLOADS["artwork"])
    assert [run["workers"] for run in record["runs"]] == [1, 2]
    for run in record["runs"]:
        for pass_name in ("cold", "warm"):
            metrics = run[pass_name]
            assert metrics["errors"] == 0, metrics
            assert metrics["elapsed_seconds"] > 0.0
            assert metrics["queries_per_second"] > 0.0
        # The warm pass rides the caches populated by the cold pass.
        assert run["warm"]["plan_cache"]["hit_rate"] == 1.0
        assert run["warm"]["answer_cache"]["misses"] == 0
    assert "2" in record["warm_speedup_vs_1_worker"]
    assert record["warm_speedup_vs_1_worker"]["1"] == 1.0


def test_run_benchmark_without_output_writes_nothing(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    config = BenchConfig(dataset="rotowire", scale=0.1, workers=(1,),
                         repeats=1, llm_latency_ms=0.0, output=None,
                         quiet=True)
    record = run_benchmark(config)
    assert record["runs"]
    assert not list(tmp_path.iterdir())

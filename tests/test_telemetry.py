"""The observability subsystem: spans, counters, metrics, and cost.

The acceptance contract: every query, under every backend, produces a
non-empty span tree covering plan/map/execute plus one span per executed
operator — and the spans, cache counters, and cost totals survive
``to_dict``/``from_dict`` and the process-lane JSON pipe byte-identically
across serial, thread, and process execution.
"""

import json
import os

import pytest

from repro.benchmarks.workloads import workload
from repro.core.plan import QueryResult
from repro.datasets import load_lake
from repro.llm.brain import SimulatedBrain
from repro.obs import (CostModel, MetricsRegistry, QueryTelemetry,
                       StageTrace, TelemetryConfig)
from repro.obs.cost import DEFAULT_COST_MODEL, resolve_cost_model
from repro.operators.base import ExecutionContext
from repro.session import Session

QUERY = "How many players are taller than 200?"


def span_dicts(result) -> list[dict]:
    return [span.to_dict() for span in result.telemetry.spans]


def zero_durations(data: dict) -> dict:
    """Telemetry dict with wall-clock blanked; tokens/cost/counters kept."""
    data = json.loads(json.dumps(data))
    for span in data["spans"]:
        span["duration_ms"] = 0.0
    return data


# ----------------------------------------------------------------------
# The cost model
# ----------------------------------------------------------------------


def test_cost_model_counts_tokens_and_rounds_cost():
    model = CostModel()
    assert model.tokens("") == 0
    assert model.tokens("abcd") == 1
    assert model.tokens("abcde") == 2  # ceil(5 / 4)
    cost = model.cost_usd(1000, 1000)
    assert cost == round(0.03 + 0.06, 8)
    assert CostModel.from_dict(model.to_dict()) == model


def test_resolve_cost_model_precedence():
    override = CostModel(name="override")
    assert resolve_cost_model(SimulatedBrain(), override=override) is override
    assert resolve_cost_model(SimulatedBrain()) is DEFAULT_COST_MODEL
    assert resolve_cost_model(object()) is DEFAULT_COST_MODEL

    class PricedBrain:
        cost_model = CostModel(name="priced", usd_per_1k_input=1.0)

    assert resolve_cost_model(PricedBrain()).name == "priced"


def test_session_cost_model_override_changes_figures(rotowire_lake):
    free = CostModel(name="free", usd_per_1k_input=0.0,
                     usd_per_1k_output=0.0)
    with Session(rotowire_lake,
                 telemetry=TelemetryConfig(cost_model=free)) as session:
        result = session.query(QUERY)
    assert result.ok
    assert result.telemetry.token_in > 0
    assert result.telemetry.cost_usd == 0.0

    with Session(rotowire_lake) as priced:
        default = priced.query(QUERY)
    assert default.telemetry.cost_usd > 0.0


# ----------------------------------------------------------------------
# Span trees: every backend, every query (the acceptance contract)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("backend,workers",
                         [("serial", 1), ("thread", 2), ("process", 2)])
def test_every_query_has_a_span_tree(backend, workers):
    queries = workload("rotowire", repeats=1)
    with Session(load_lake("rotowire")) as session:
        report = session.batch(queries, workers=workers, backend=backend)
    assert report.num_errors == 0
    for result in report.results:
        spans = result.telemetry.spans
        assert spans, f"no spans under {backend} for {result.trace.query!r}"
        stages = {span.stage for span in spans}
        assert {"discovery", "planning", "mapping"} <= stages
        operator_spans = [s for s in spans
                          if s.stage.startswith("operator:")]
        assert len(operator_spans) == len(result.trace.physical_steps) > 0
        for span, step in zip(operator_spans,
                              result.trace.physical_steps):
            assert span.stage == f"operator:{step.operator}"
            assert span.step_index == step.logical.index
        counters = result.telemetry.counters
        assert counters.get("plan_cache_misses", 0) \
            + counters.get("plan_cache_hits", 0) == 1


def test_process_lane_telemetry_matches_serial_byte_for_byte():
    # Deterministic query->lane affinity gives process lanes the same
    # cache-hit pattern as a serial pass, so with only wall clock blanked
    # the telemetry — spans, tokens, cost, counters — is byte-identical
    # after the JSON pipe.
    queries = workload("rotowire", repeats=2)
    with Session(load_lake("rotowire")) as a:
        serial = a.batch(queries, backend="serial")
    with Session(load_lake("rotowire")) as b:
        process = b.batch(queries, workers=2, backend="process")
    assert serial.num_errors == process.num_errors == 0
    serial_blob = json.dumps(
        [zero_durations(r.telemetry.to_dict()) for r in serial.results],
        sort_keys=True)
    process_blob = json.dumps(
        [zero_durations(r.telemetry.to_dict()) for r in process.results],
        sort_keys=True)
    assert serial_blob == process_blob


def test_canonical_telemetry_is_identical_across_all_backends():
    # Threads race for the shared caches, so locality counters and
    # planning-span tokens may legitimately differ; the canonical form
    # blanks exactly those and must then agree across every backend.
    queries = workload("rotowire", repeats=2)
    blobs = {}
    for backend, workers in (("serial", 1), ("thread", 3), ("process", 3)):
        with Session(load_lake("rotowire")) as session:
            report = session.batch(queries, workers=workers,
                                   backend=backend)
        assert report.num_errors == 0
        blobs[backend] = json.dumps(
            [QueryTelemetry.canonicalize(r.telemetry.to_dict())
             for r in report.results], sort_keys=True)
    assert blobs["thread"] == blobs["serial"]
    assert blobs["process"] == blobs["serial"]


class _OneBadPlanModel:
    """Delegates to SimulatedBrain but botches the first planning call."""

    name = "one-bad-plan"

    def __init__(self):
        self._brain = SimulatedBrain()
        self._bad_plans_left = 1

    def complete(self, messages):
        from repro.core.prompts import PLANNING_MARKER
        text = "\n\n".join(message.content for message in messages)
        if PLANNING_MARKER in text and self._bad_plans_left:
            self._bad_plans_left -= 1
            return ("Step 1: Count the number of rows of the "
                    "'missing_table' table into the 'count' column.\n"
                    "Input: ['missing_table']\n"
                    "Output: result_table\n"
                    "New Columns: ['count']\n"
                    "Step 2: Plan completed.")
        return self._brain.complete(messages)


def test_failed_attempt_spans_carry_the_error(rotowire_lake):
    with Session(rotowire_lake, brain=_OneBadPlanModel()) as session:
        result = session.query(QUERY)
    assert result.ok and result.trace.replans == 1
    failed = [s for s in result.telemetry.spans if "error" in s.notes]
    assert failed, "the failed first attempt must leave a span"
    for span in failed:
        assert span.notes["error"]
        assert span.step_index is not None
    # The replanned attempt still produces the full successful tree.
    stages = {s.stage for s in result.telemetry.spans}
    assert "planning" in stages
    assert any(stage.startswith("operator:") for stage in stages)


# ----------------------------------------------------------------------
# Serde: spans survive JSON, caches, and old readers
# ----------------------------------------------------------------------


def test_result_telemetry_roundtrips_byte_identically(rotowire_lake):
    result = Session(rotowire_lake).query(QUERY)
    assert result.telemetry.spans
    data = json.loads(json.dumps(result.to_dict()))
    restored = QueryResult.from_dict(data)
    assert json.dumps(restored.to_dict(), sort_keys=True) \
        == json.dumps(result.to_dict(), sort_keys=True)
    assert restored.telemetry.cost_usd == result.telemetry.cost_usd


def test_cache_files_warm_a_new_session_with_telemetry(tmp_path):
    plan_file = tmp_path / "plans.json"
    answer_file = tmp_path / "answers.json"
    with Session("rotowire") as warm:
        cold = warm.query(QUERY)
        assert not cold.telemetry.plan_cache_hit
        warm.save_plan_cache(plan_file)
        warm.save_answer_cache(answer_file)

    with Session("rotowire") as restarted:
        restarted.load_plan_cache(plan_file)
        restarted.load_answer_cache(answer_file)
        hit = restarted.query(QUERY)
    assert hit.ok and hit.value == cold.value
    assert hit.telemetry.plan_cache_hit
    assert hit.telemetry.counters["plan_cache_hits"] == 1
    # Plan served from disk: the planning span spent zero LLM tokens.
    planning = [s for s in hit.telemetry.spans if s.stage == "planning"]
    assert planning and planning[0].token_in == 0


def test_render_tree_shows_stages_costs_and_counters(rotowire_lake):
    result = Session(rotowire_lake).query(QUERY)
    tree = result.telemetry.render_tree()
    assert "spans:" in tree and "cost: $" in tree
    for stage in ("discovery", "planning", "mapping"):
        assert stage in tree
    assert "operator:SQL" in tree
    assert "counters:" in tree and "plan_cache_misses=1" in tree


# ----------------------------------------------------------------------
# The metrics registry
# ----------------------------------------------------------------------


def test_metrics_snapshot_is_deterministic_across_runs(rotowire_lake):
    def counters_of(session: Session) -> dict:
        session.batch(workload("rotowire", repeats=2))
        snapshot = session.metrics()
        # Wall clock varies run to run; everything else must not.
        assert json.dumps(session.metrics(), sort_keys=True) \
            == json.dumps(snapshot, sort_keys=True)  # re-snapshot stable
        return {
            "counters": snapshot["counters"],
            "hit_rates": {k: v for k, v in snapshot["derived"].items()
                          if k.endswith("_rate")},
            "histogram_counts": {name: hist["count"]
                                 for name, hist
                                 in snapshot["histograms"].items()},
        }

    first = counters_of(Session(rotowire_lake))
    second = counters_of(Session(rotowire_lake))
    assert first == second
    assert first["counters"]["queries_total"] \
        == len(workload("rotowire", repeats=2))
    assert first["counters"].get("queries_error", 0) == 0
    assert first["histogram_counts"]["latency_total"] \
        == first["counters"]["queries_total"]


def test_metrics_delta_protocol_merges_worker_state():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    worker.increment("queries_total")
    before = worker.raw_state()
    worker.increment("queries_total")
    worker.increment("cost_usd_total", 0.25)
    worker.observe("latency_total", 0.5)
    delta = worker.delta_since(before)
    assert delta["counters"]["queries_total"] == 1  # only the new one
    parent.merge_delta(delta)
    parent.merge_delta(None)  # tolerated: worker predates the protocol
    snapshot = parent.snapshot()
    assert snapshot["counters"]["queries_total"] == 1
    assert snapshot["counters"]["cost_usd_total"] == 0.25
    assert snapshot["histograms"]["latency_total"]["count"] == 1


@pytest.mark.parametrize("backend,workers",
                         [("thread", 2), ("process", 2)])
def test_parallel_backends_feed_the_session_registry(backend, workers):
    queries = workload("rotowire", repeats=1)
    with Session(load_lake("rotowire")) as session:
        report = session.batch(queries, workers=workers, backend=backend)
        snapshot = session.metrics()
    assert report.num_errors == 0
    assert snapshot["counters"]["queries_total"] == len(queries)
    assert snapshot["counters"]["queries_ok"] == len(queries)
    assert snapshot["counters"]["token_in_total"] > 0
    assert snapshot["counters"]["cost_usd_total"] > 0
    assert snapshot["derived"]["queries_per_second"] > 0


# ----------------------------------------------------------------------
# Worker failures: lane attribution end to end
# ----------------------------------------------------------------------


def test_worker_failure_carries_lane_id_into_report_and_metrics():
    from _poison import POISON_MARKER, WorkerOnlyPoisonPlanner
    queries = [QUERY, f"{QUERY.rstrip('?')} {POISON_MARKER}?"]
    planner = WorkerOnlyPoisonPlanner(SimulatedBrain(), os.getpid())
    with Session("rotowire", planner=planner) as session:
        report = session.batch(queries, workers=2, backend="process")
        snapshot = session.metrics()
    assert report.num_errors == 0  # recovered by the in-parent fallback
    events = report.worker_failures
    assert len(events) == 1
    event = events[0]
    assert event.worker_id is not None and 0 <= event.worker_id < 2
    assert event.recovered
    from repro.core.plan import ErrorEvent
    assert ErrorEvent.from_dict(event.to_dict()) == event

    rendered = report.render()
    assert "worker failures:" in rendered
    assert f"[lane {event.worker_id}]" in rendered
    assert "recovered in parent" in rendered
    assert snapshot["counters"]["worker_failures_total"] == 1


# ----------------------------------------------------------------------
# TelemetryConfig: the off switch
# ----------------------------------------------------------------------


def test_disabled_telemetry_skips_spans_but_keeps_locality(rotowire_lake):
    with Session(rotowire_lake,
                 telemetry=TelemetryConfig(enabled=False)) as session:
        result = session.query(QUERY)
        snapshot = session.metrics()
    assert result.ok
    assert result.telemetry.spans == []
    assert result.telemetry.cost_usd == 0.0
    # Cache accounting and metrics are not tracing: they stay on.
    assert result.telemetry.counters["plan_cache_misses"] == 1
    assert snapshot["counters"]["queries_total"] == 1
    assert "spans_total" not in snapshot["counters"]


@pytest.mark.parametrize("backend,workers",
                         [("thread", 2), ("process", 2)])
def test_disabled_telemetry_propagates_to_lanes(backend, workers):
    queries = workload("rotowire", repeats=1)
    with Session(load_lake("rotowire"),
                 telemetry=TelemetryConfig(enabled=False)) as session:
        report = session.batch(queries, workers=workers, backend=backend)
    assert report.num_errors == 0
    assert all(not r.telemetry.spans for r in report.results)
    assert report.telemetry.cost_usd == 0.0


def test_execution_context_counts_are_safe_without_telemetry():
    context = ExecutionContext()
    context.count("sql_statements")           # must not raise
    context.record_answer_lookup(hit=True)
    telemetry = QueryTelemetry()
    wired = ExecutionContext(telemetry=telemetry)
    wired.count("sql_statements")
    wired.record_answer_lookup(hit=False)
    assert telemetry.counters["sql_statements"] == 1
    assert telemetry.counters["answer_cache_misses"] == 1


# ----------------------------------------------------------------------
# The worker pipe itself, driven in-process
# ----------------------------------------------------------------------


def test_worker_pipe_ships_spans_and_metrics_delta(monkeypatch):
    from test_exec_backends import make_worker_payload

    from repro.exec import procworker
    monkeypatch.setattr(procworker, "_STATE", {})
    session = Session("rotowire")
    payload = make_worker_payload(session)
    payload["telemetry"] = session.telemetry
    procworker.initialize_worker(payload)

    answer = procworker.run_worker_query(QUERY)
    assert answer["ok"]
    wire = json.loads(json.dumps(answer))  # what the pipe actually moves
    trace = wire["result"]["trace"]
    stages = [span["stage"] for span in trace["telemetry"]["spans"]]
    assert "planning" in stages
    assert any(stage.startswith("operator:") for stage in stages)
    delta = wire["metrics_delta"]
    assert delta["counters"]["queries_total"] == 1
    registry = MetricsRegistry()
    registry.merge_delta(delta)
    assert registry.snapshot()["counters"]["queries_ok"] == 1


def test_worker_pipe_tolerates_payload_without_telemetry(monkeypatch):
    # An old parent that predates TelemetryConfig still initializes the
    # worker (tracing defaults on) — the init payload key is optional.
    from test_exec_backends import make_worker_payload

    from repro.exec import procworker
    monkeypatch.setattr(procworker, "_STATE", {})
    procworker.initialize_worker(make_worker_payload(Session("rotowire")))
    answer = procworker.run_worker_query(QUERY)
    assert answer["ok"]
    assert answer["result"]["trace"]["telemetry"]["spans"]


# ----------------------------------------------------------------------
# Canonical form
# ----------------------------------------------------------------------


def test_canonicalize_blanks_wall_clock_and_locality():
    telemetry = QueryTelemetry(
        spans=[StageTrace("planning", duration_ms=3.2, token_in=40,
                          token_out=8, cost_usd=0.0017),
               StageTrace("operator:SQL", duration_ms=0.7, token_in=12,
                          token_out=3, cost_usd=0.00054, step_index=1)],
        counters={"plan_cache_hits": 1, "plan_from_cache": 1,
                  "sql_statements": 2, "vision_inferences": 4})
    canon = QueryTelemetry.canonicalize(telemetry.to_dict())
    by_stage = {span["stage"]: span for span in canon["spans"]}
    assert all(span["duration_ms"] == 0.0 for span in canon["spans"])
    # Planning cost depends on cache locality -> blanked; operator work
    # is deterministic -> kept.
    assert by_stage["planning"]["token_in"] == 0
    assert by_stage["planning"]["cost_usd"] == 0.0
    assert by_stage["operator:SQL"]["token_in"] == 12
    assert canon["counters"] == {"sql_statements": 2}

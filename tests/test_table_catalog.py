"""Unit tests for Table and DataLake round-trips."""

import pytest

from repro.data import (ColumnSpec, DataLake, DataType, Schema, SourceKind,
                        Table)
from repro.errors import UnknownTableError

_SCHEMA = Schema([
    ColumnSpec("name", DataType.STRING),
    ColumnSpec("height_cm", DataType.INTEGER),
])

_ROWS = [("Ann", 180), ("Bob", 195), ("Cid", 201)]


def _table() -> Table:
    return Table.from_rows(_SCHEMA, _ROWS)


def test_table_from_rows_round_trip():
    table = _table()
    assert table.num_rows == 3
    assert table.column_names == ["name", "height_cm"]
    assert list(table.row_tuples()) == _ROWS
    assert table.row(1) == {"name": "Bob", "height_cm": 195}


def test_table_from_dicts_missing_keys_become_none():
    table = Table.from_dicts(_SCHEMA, [{"name": "Ann"}])
    assert table.column("height_cm") == [None]


def test_table_filter_project_rename():
    table = _table()
    tall = table.filter([height > 190 for height in table.column("height_cm")])
    assert tall.column("name") == ["Bob", "Cid"]
    names = tall.project(["name"]).rename({"name": "player"})
    assert names.column_names == ["player"]
    assert names.column("player") == ["Bob", "Cid"]


def test_table_equality_round_trip():
    table = _table()
    again = Table.from_dicts(_SCHEMA, list(table.rows()))
    assert table.equals(again)
    assert table.equals(again.take([2, 1, 0]), ignore_order=True)


def test_lake_add_resolve_subset():
    lake = DataLake(name="test")
    lake.add_table("players", _table(), description="the players")
    assert "players" in lake
    assert len(lake) == 1
    assert lake.table("players").num_rows == 3
    assert lake.source("players").kind is SourceKind.TABLE
    subset = lake.subset(["players"])
    assert subset.source_names == ["players"]
    with pytest.raises(UnknownTableError):
        lake.table("nope")


def test_lake_fingerprint_is_stable_and_shape_sensitive():
    lake_a = DataLake(name="a").add_table("players", _table())
    lake_b = DataLake(name="b").add_table("players", _table())
    # Same sources/schemas/row counts → same fingerprint, name is irrelevant.
    assert lake_a.fingerprint() == lake_b.fingerprint()
    # A different shape → different fingerprint.
    lake_c = DataLake(name="c").add_table(
        "players", Table.from_rows(_SCHEMA, _ROWS[:2]))
    assert lake_a.fingerprint() != lake_c.fingerprint()


# ----------------------------------------------------------------------
# Columnar-storage edge cases (the fuzzer's first likely finds)
# ----------------------------------------------------------------------


def make_typed_table(columns):
    from repro.data.datatypes import infer_column_type
    specs = [ColumnSpec(name, infer_column_type(list(values)))
             for name, values in columns.items()]
    return Table(Schema(specs), columns)


def test_all_none_typed_columns_store_and_roundtrip():
    schema = Schema([ColumnSpec("n", DataType.INTEGER),
                     ColumnSpec("f", DataType.FLOAT),
                     ColumnSpec("b", DataType.BOOLEAN),
                     ColumnSpec("d", DataType.DATE),
                     ColumnSpec("s", DataType.STRING)])
    nones = {name: [None, None] for name in schema.column_names}
    table = Table(schema, nones)
    for name in schema.column_names:
        assert table.column(name) == [None, None]
    again = Table.from_dict(table.to_dict())
    assert again == table
    assert again.fingerprint() == table.fingerprint()


def test_all_none_typed_column_concat_with_values():
    schema = Schema([ColumnSpec("n", DataType.INTEGER)])
    nones = Table(schema, {"n": [None, None]})
    values = Table(schema, {"n": [7]})
    assert nones.concat(values).column("n") == [None, None, 7]
    assert values.concat(nones).column("n") == [7, None, None]


def test_typed_columns_round_trip_exactly():
    from datetime import date
    # Values the typed stores must reproduce bit-for-bit — fingerprints
    # hash reprs, so any drift would silently invalidate old caches.
    int64_min, int64_max = -2 ** 63, 2 ** 63 - 1
    table = make_typed_table({
        "i": [int64_min, int64_max, 0, None],
        "f": [-0.0, float("inf"), 1e-323, None],
        "d": [date.min, date.max, date(2020, 2, 29), None],
        "b": [True, False, None, None],
    })
    assert table.column("i") == [int64_min, int64_max, 0, None]
    values = table.column("f")
    assert repr(values[0]) == "-0.0" and values[1] == float("inf")
    assert values[2] == 1e-323
    assert table.column("d")[:3] == [date.min, date.max, date(2020, 2, 29)]
    assert table.column("b") == [True, False, None, None]


def test_int64_overflow_and_bool_contamination_fall_back():
    from repro.data.columns import IntColumn, ObjectColumn, build_column
    from repro.data.datatypes import DataType as DT
    assert isinstance(build_column([2 ** 63 - 1, None], DT.INTEGER),
                      IntColumn)
    # Out-of-int64 values and bools (bool is not int here: reprs differ)
    # must demote to object storage rather than corrupt the typed buffer.
    assert isinstance(build_column([2 ** 63, 1], DT.INTEGER), ObjectColumn)
    assert isinstance(build_column([-2 ** 63 - 1, 1], DT.INTEGER),
                      ObjectColumn)
    assert isinstance(build_column([True, 1], DT.INTEGER), ObjectColumn)
    assert build_column([2 ** 63, 1], DT.INTEGER).materialize() == [2 ** 63, 1]


def test_empty_table_joins_match_across_engines():
    from repro.relational import colexec, ops
    from repro.relational.sqlexec import build_join_sql, run_sql
    empty = Table.empty(Schema([ColumnSpec("k", DataType.STRING),
                                ColumnSpec("v", DataType.INTEGER)]))
    other = Table(Schema([ColumnSpec("k", DataType.STRING),
                          ColumnSpec("w", DataType.INTEGER)]),
                  {"k": ["a"], "w": [1]})
    for left, right in ((empty, other), (other, empty), (empty, empty)):
        sql = build_join_sql("l", "r", "k", "k", left.column_names,
                             right.column_names)
        bridged = run_sql(sql, {"l": left, "r": right})
        columnar = colexec.join_tables(left, right, "k", "k")
        assert columnar.to_dict() == bridged.to_dict()
        assert columnar.fingerprint() == bridged.fingerprint()
        assert ops.join(left, right, "k", "k").num_rows == 0


def test_empty_table_aggregates_match_sqlite():
    from repro.relational import colexec, ops
    from repro.relational.sqlexec import run_sql
    empty = Table.empty(Schema([ColumnSpec("k", DataType.STRING),
                                ColumnSpec("v", DataType.INTEGER)]))
    sql = ("SELECT COUNT(*) AS c, SUM(v) AS s, AVG(v) AS a, MIN(v) AS m "
           "FROM t")
    bridged = run_sql(sql, {"t": empty})
    assert bridged.to_dict()["columns"] == {"c": [0], "s": [None],
                                            "a": [None], "m": [None]}
    for engine in ("columnar", "native"):
        result = colexec.execute(sql, {"t": empty}, engine=engine)
        assert result.to_dict() == bridged.to_dict(), engine
    grouped = ops.group_aggregate(empty, ["k"], [("count", "*", "c")])
    assert grouped.num_rows == 0


def test_date_coercion_at_column_boundaries():
    from datetime import date, datetime
    from repro.data.datatypes import coerce
    from repro.errors import TypeMismatchError
    assert coerce("0001-01-01", DataType.DATE) == date.min
    assert coerce("9999-12-31", DataType.DATE) == date.max
    assert coerce(datetime(2020, 1, 2, 3, 4), DataType.DATE) == date(2020, 1, 2)
    for bad in ("2020-1-2", "2020-13-01", "2020-02-30", 737791):
        with pytest.raises(TypeMismatchError):
            coerce(bad, DataType.DATE)


def test_date_column_boundaries_survive_take_and_concat():
    from datetime import date
    schema = Schema([ColumnSpec("d", DataType.DATE)])
    table = Table(schema, {"d": [date.min, None, date.max]})
    taken = table.take([2, 0])
    assert taken.column("d") == [date.max, date.min]
    merged = table.concat(taken)
    assert merged.column("d") == [date.min, None, date.max, date.max,
                                  date.min]
    assert Table.from_dict(merged.to_dict()) == merged

"""Unit tests for Table and DataLake round-trips."""

import pytest

from repro.data import (ColumnSpec, DataLake, DataType, Schema, SourceKind,
                        Table)
from repro.errors import UnknownTableError

_SCHEMA = Schema([
    ColumnSpec("name", DataType.STRING),
    ColumnSpec("height_cm", DataType.INTEGER),
])

_ROWS = [("Ann", 180), ("Bob", 195), ("Cid", 201)]


def _table() -> Table:
    return Table.from_rows(_SCHEMA, _ROWS)


def test_table_from_rows_round_trip():
    table = _table()
    assert table.num_rows == 3
    assert table.column_names == ["name", "height_cm"]
    assert list(table.row_tuples()) == _ROWS
    assert table.row(1) == {"name": "Bob", "height_cm": 195}


def test_table_from_dicts_missing_keys_become_none():
    table = Table.from_dicts(_SCHEMA, [{"name": "Ann"}])
    assert table.column("height_cm") == [None]


def test_table_filter_project_rename():
    table = _table()
    tall = table.filter([height > 190 for height in table.column("height_cm")])
    assert tall.column("name") == ["Bob", "Cid"]
    names = tall.project(["name"]).rename({"name": "player"})
    assert names.column_names == ["player"]
    assert names.column("player") == ["Bob", "Cid"]


def test_table_equality_round_trip():
    table = _table()
    again = Table.from_dicts(_SCHEMA, list(table.rows()))
    assert table.equals(again)
    assert table.equals(again.take([2, 1, 0]), ignore_order=True)


def test_lake_add_resolve_subset():
    lake = DataLake(name="test")
    lake.add_table("players", _table(), description="the players")
    assert "players" in lake
    assert len(lake) == 1
    assert lake.table("players").num_rows == 3
    assert lake.source("players").kind is SourceKind.TABLE
    subset = lake.subset(["players"])
    assert subset.source_names == ["players"]
    with pytest.raises(UnknownTableError):
        lake.table("nope")


def test_lake_fingerprint_is_stable_and_shape_sensitive():
    lake_a = DataLake(name="a").add_table("players", _table())
    lake_b = DataLake(name="b").add_table("players", _table())
    # Same sources/schemas/row counts → same fingerprint, name is irrelevant.
    assert lake_a.fingerprint() == lake_b.fingerprint()
    # A different shape → different fingerprint.
    lake_c = DataLake(name="c").add_table(
        "players", Table.from_rows(_SCHEMA, _ROWS[:2]))
    assert lake_a.fingerprint() != lake_c.fingerprint()

"""Unit tests for logical plans: dataflow graph and text round-trips."""

from repro.core.parsing import parse_logical_plan
from repro.core.plan import ErrorEvent, LogicalPlan, LogicalStep, PlanTrace


def _two_step_plan() -> LogicalPlan:
    return LogicalPlan(steps=[
        LogicalStep(index=1,
                    description="Join the 'teams' and 'teams_to_games' "
                                "tables on the 'name' column.",
                    inputs=["teams", "teams_to_games"],
                    output="joined_table"),
        LogicalStep(index=2,
                    description="Count the number of rows of the "
                                "'joined_table' table into the 'count' "
                                "column.",
                    inputs=["joined_table"],
                    output="result_table",
                    new_columns=["count"]),
    ], thought="join then count")


def test_dataflow_graph_nodes_and_edges():
    graph = _two_step_plan().dataflow_graph()
    assert graph.nodes["step:1"]["kind"] == "step"
    assert graph.nodes["teams"]["kind"] == "table"
    assert graph.has_edge("teams", "step:1")
    assert graph.has_edge("teams_to_games", "step:1")
    assert graph.has_edge("step:1", "joined_table")
    assert graph.has_edge("joined_table", "step:2")
    assert graph.has_edge("step:2", "result_table")
    # 2 step nodes + 4 table nodes, edges form a DAG.
    assert len(graph.nodes) == 6
    assert len(graph.edges) == 5


def test_dataflow_graph_of_empty_plan_is_empty():
    graph = LogicalPlan().dataflow_graph()
    assert len(graph.nodes) == 0


def test_render_parse_round_trip():
    plan = _two_step_plan()
    parsed = parse_logical_plan(plan.render())
    assert parsed.thought == plan.thought
    assert len(parsed) == len(plan)
    for original, recovered in zip(plan, parsed):
        assert recovered.index == original.index
        assert recovered.description == original.description
        assert recovered.inputs == original.inputs
        assert recovered.output == original.output
        assert recovered.new_columns == original.new_columns


def test_trace_crashed_reflects_unrecovered_errors():
    trace = PlanTrace(query="q")
    assert not trace.crashed
    trace.errors.append(ErrorEvent("execution", 1, "boom", recovered=True))
    assert not trace.crashed
    trace.errors.append(ErrorEvent("mapping", 2, "boom"))
    assert trace.crashed

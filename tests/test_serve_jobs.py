"""The job queue + admission layer without HTTP in front: the
thread-level semantics the server builds on, plus the load-test
harness's record shape."""

from __future__ import annotations

import json

import pytest

from repro.llm.brain import SimulatedBrain
from repro.serve.admission import AdmissionController, AdmissionError
from repro.serve.jobs import JobManager
from repro.serve.loadtest import LoadTestConfig, healthy, percentile, run_loadtest
from repro.serve.schemas import SchemaError, parse_submit
from repro.session import Session


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------

def test_parse_submit_validation():
    request = parse_submit({"query": "  who?  ", "timeout_s": 2})
    assert request.query == "who?"
    assert request.timeout_s == 2.0
    assert parse_submit({"query": "q"}).timeout_s is None
    for bad in (None, [], {"query": 3}, {"query": " "}, {},
                {"query": "q", "timeout_s": 0},
                {"query": "q", "timeout_s": True},
                {"query": "q", "extra": 1},
                {"query": "x" * 10_001}):
        with pytest.raises(SchemaError):
            parse_submit(bad)


# ----------------------------------------------------------------------
# Admission controller
# ----------------------------------------------------------------------

def test_admission_gates_and_occupancy():
    admission = AdmissionController(queue_depth=2, per_client_limit=2,
                                    retry_after_s=3.0)
    admission.admit("a")
    admission.admit("a")
    # Queue full before the client limit is consulted.
    with pytest.raises(AdmissionError) as info:
        admission.admit("b")
    assert info.value.reason == "queue_full"
    assert info.value.status == 429
    assert info.value.retry_after_s == 3.0
    # One job starts running: a queue slot frees, but client "a" is at
    # its in-flight (queued + running) limit.
    admission.mark_started()
    with pytest.raises(AdmissionError) as info:
        admission.admit("a")
    assert info.value.reason == "client_limit"
    admission.admit("b")
    occupancy = admission.occupancy()
    assert occupancy == {"queued": 2, "running": 1, "clients": 2,
                         "queue_depth": 2, "per_client_limit": 2,
                         "draining": False}
    # Releases unwind both axes.
    admission.release_running("a")
    admission.release_queued("a")
    admission.admit("a")
    # Draining rejects everything with 503.
    admission.start_draining()
    with pytest.raises(AdmissionError) as info:
        admission.admit("c")
    assert info.value.reason == "draining"
    assert info.value.status == 503


def test_admission_rejections_counted_in_metrics(rotowire_lake):
    session = Session(rotowire_lake)
    manager = JobManager(session, workers=1, queue_depth=1,
                         per_client_limit=1)
    try:
        manager.admission.start_draining()
        with pytest.raises(AdmissionError):
            manager.submit("q", "a")
        counters = session.metrics_registry.counters()
        assert counters["serve_admission_rejections_total"] == 1
        assert counters["serve_admission_rejections_draining"] == 1
    finally:
        manager.close()


# ----------------------------------------------------------------------
# Job manager
# ----------------------------------------------------------------------

def test_job_manager_runs_jobs_and_records_metrics(rotowire_lake):
    session = Session(rotowire_lake)
    manager = JobManager(session, workers=2)
    try:
        jobs = [manager.submit("How many players are taller than 200?",
                               f"client-{i}") for i in range(3)]
        for job in jobs:
            assert job.wait(30)
            assert job.status == "done"
            assert job.result is not None and job.result.ok
        payload = jobs[0].to_dict()
        assert payload["ok"] is True
        assert payload["result"]["kind"] == "value"
        assert payload["queue_wait_ms"] >= 0
        events = [event["event"]
                  for event in jobs[0].events_since(0)[0]]
        assert events[0] == "queued" and events[-1] == "done"
        assert "span" in events
        counters = session.metrics_registry.counters()
        assert counters["serve_jobs_submitted_total"] == 3
        assert counters["serve_jobs_completed_total"] == 3
        histograms = session.metrics_registry.snapshot()["histograms"]
        assert histograms["serve_queue_wait"]["count"] == 3
        assert histograms["serve_job_latency"]["count"] == 3
    finally:
        manager.close()


def test_job_manager_cancel_and_drain(rotowire_lake):
    session = Session(rotowire_lake,
                      brain=SimulatedBrain(latency_seconds=0.2))
    manager = JobManager(session, workers=1, queue_depth=10)
    running = manager.submit("Who is the tallest player?", "a")
    queued = manager.submit("Who is the tallest player?", "a")
    assert manager.cancel(queued.id) == "cancelled"
    assert manager.cancel("missing") == "missing"
    assert queued.finished and queued.status == "cancelled"
    # Drain finishes the in-flight job, then refuses new work.
    assert manager.drain(grace_s=30) is True
    assert running.status == "done"
    assert manager.cancel(running.id) == "finished"
    with pytest.raises(AdmissionError):
        manager.submit("q", "a")


def test_crash_result_resolves_as_worker_error(rotowire_lake):
    session = Session(rotowire_lake)
    manager = JobManager(session, workers=1)

    class Boom(Exception):
        pass

    try:
        job = manager.submit("Who is the tallest player?", "a")
        assert job.wait(30) and job.result.ok
        # The crash path (a non-ReproError escaping the engine) resolves
        # the job with a worker-phase error instead of killing the lane.
        crash = manager._crash_result(job, 0, Boom("engine exploded"))
        assert crash.kind == "error"
        assert crash.trace.errors[0].phase == "worker"
        assert "Boom" in crash.error
        counters = session.metrics_registry.counters()
        assert counters["serve_worker_failures_total"] == 1
    finally:
        manager.close()


# ----------------------------------------------------------------------
# Load-test harness
# ----------------------------------------------------------------------

def test_percentile_nearest_rank():
    assert percentile([], 99) == 0.0
    assert percentile([5.0], 50) == 5.0
    samples = list(range(1, 101))
    assert percentile(samples, 50) == 50
    assert percentile(samples, 99) == 99
    assert percentile(samples, 100) == 100


def test_loadtest_smoke_writes_record(tmp_path):
    output = tmp_path / "BENCH_serve.json"
    record = run_loadtest(LoadTestConfig(
        dataset="rotowire", scale=1.0, clients=2, repeats=1,
        workers=2, queue_depth=4, per_client_limit=4,
        llm_latency_ms=0.0, burst_factor=2,
        output=str(output), quiet=True))
    assert output.exists()
    on_disk = json.loads(output.read_text())
    assert on_disk["benchmark"] == "serve_loadtest"
    for name in ("cold", "warm"):
        record_pass = record["passes"][name]
        assert record_pass["requests"] > 0
        assert record_pass["errors"] == 0
        assert record_pass["p99_ms"] >= record_pass["p50_ms"] > 0
    burst = record["burst"]
    assert burst["submitted"] == 8
    assert burst["accepted"] + burst["rejected_429"] == burst["submitted"]
    assert burst["other_status"] == 0 and burst["unresolved"] == 0
    assert record["metrics"]["counters"]["serve_jobs_completed_total"] > 0
    ok, problems = healthy(record)
    assert ok, problems


def test_loadtest_healthy_flags_problems():
    bad = {
        "passes": {"warm": {"errors": 2, "error_outcomes": ["http_500"]}},
        "burst": {"submitted": 4, "accepted": 1, "rejected_429": 2,
                  "other_status": 1, "unresolved": 1},
    }
    ok, problems = healthy(bad)
    assert not ok
    assert len(problems) == 4

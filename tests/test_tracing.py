"""Distributed tracing end to end: context propagation across every
process boundary, trace export/inspection, and the serve endpoints.

The boundary tests pin one hop each — HTTP header → job, job → process
worker lane, lane → cachenet RPC — by asserting the *same trace id* on
both sides; the acceptance test runs the full chain (serve with process
lanes, live cache tier, JSONL export) and checks the exported span tree
contains all three layers.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.cachenet import CacheTierServer
from repro.obs import (SlowQueryLog, TraceBuffer, TraceContext,
                       TraceContextError, TraceExporter, TracePipeline,
                       build_trace_record, render_prometheus,
                       render_trace_record)
from repro.obs.tracecli import main as trace_main
from repro.session import Session

from test_serve import Client, serve  # noqa: F401 - fixture reuse

QUERY = "How many players are taller than 200?"


# ----------------------------------------------------------------------
# TraceContext: traceparent parsing and derivation
# ----------------------------------------------------------------------

def test_traceparent_roundtrip():
    context = TraceContext.new()
    parsed = TraceContext.parse_traceparent(context.to_traceparent())
    assert parsed.trace_id == context.trace_id
    assert parsed.span_id == context.span_id


def test_child_shares_trace_id_with_fresh_span_id():
    context = TraceContext.new()
    child = context.child()
    assert child.trace_id == context.trace_id
    assert child.span_id != context.span_id


@pytest.mark.parametrize("header", [
    "",
    "not-a-traceparent",
    "00-zzzz-1234567890abcdef-01",                      # non-hex trace id
    "00-" + "a" * 31 + "-" + "b" * 16 + "-01",          # short trace id
    "00-" + "a" * 32 + "-" + "b" * 15 + "-01",          # short span id
    "01-" + "a" * 32 + "-" + "b" * 16 + "-01",          # unknown version
    "00-" + "0" * 32 + "-" + "b" * 16 + "-01",          # all-zero trace id
    "00-" + "a" * 32 + "-" + "0" * 16 + "-01",          # all-zero span id
])
def test_malformed_traceparent_rejected(header):
    with pytest.raises(TraceContextError):
        TraceContext.parse_traceparent(header)


# ----------------------------------------------------------------------
# Boundary 1: HTTP traceparent header → serve job
# ----------------------------------------------------------------------

def _submit_with_traceparent(handle, header: str):
    client = Client(handle)
    client.conn.request(
        "POST", "/queries", body=json.dumps({"query": QUERY}),
        headers={"x-api-token": "test", "traceparent": header})
    response = client.conn.getresponse()
    body = json.loads(response.read().decode("utf-8"))
    return client, response.status, body


def test_serve_header_joins_job_to_callers_trace(serve):  # noqa: F811
    handle = serve(slow_query_ms=10_000.0)
    caller = TraceContext.new()
    client, status, body = _submit_with_traceparent(
        handle, caller.to_traceparent())
    assert status == 202
    assert body["trace_id"] == caller.trace_id
    assert body["links"]["trace"] == f"/traces/{caller.trace_id}"
    client.poll_done(body["id"])

    status, _, record = client.request(
        "GET", f"/traces/{caller.trace_id}")
    assert status == 200
    assert record["trace_id"] == caller.trace_id
    root = record["spans"][0]
    assert root["name"] == "serve.request"
    # The job's root span links back to the caller's own span id.
    assert root["parent_span_id"] == caller.span_id
    assert record["attributes"]["job_id"] == body["id"]
    assert record["slow"] is False
    # Engine stages rode the same trace as child spans of the root.
    names = {span["name"] for span in record["spans"]}
    assert "queue.wait" in names
    assert "planning" in names


def test_serve_rejects_malformed_traceparent(serve):  # noqa: F811
    handle = serve()
    client, status, body = _submit_with_traceparent(handle, "garbage")
    assert status == 400
    assert body["error"] == "bad_traceparent"
    # Nothing was admitted.
    status, _, listing = client.request("GET", "/traces")
    assert status == 200 and listing["count"] == 0


# ----------------------------------------------------------------------
# Boundary 2: job → process worker lane (across the JSON pipe)
# ----------------------------------------------------------------------

def test_worker_lane_joins_parent_trace(monkeypatch):
    from test_exec_backends import make_worker_payload

    from repro.exec import procworker
    monkeypatch.setattr(procworker, "_STATE", {})
    session = Session("rotowire")
    procworker.initialize_worker(make_worker_payload(session))
    context = TraceContext.new()

    payload = procworker.run_worker_query(QUERY, context.to_dict())
    assert payload["ok"]
    assert payload["result"]["trace"]["trace_id"] == context.trace_id

    # A trace-less call still works and mints its own id.
    bare = procworker.run_worker_query(QUERY)
    assert bare["ok"]
    assert bare["result"]["trace"]["trace_id"] != context.trace_id


# ----------------------------------------------------------------------
# Boundary 3: worker lane → cachenet RPC
# ----------------------------------------------------------------------

def test_cachenet_rpcs_join_query_trace():
    server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    try:
        session = Session("rotowire", cache_url=server.url)
        context = TraceContext.new()
        result = session.query(QUERY, trace_context=context)
        assert result.ok
        assert result.trace.trace_id == context.trace_id
        rpc_spans = [span for span in result.telemetry.spans
                     if span.stage.startswith("cachenet:")]
        assert rpc_spans, "no cachenet RPC spans on the query telemetry"
        for span in rpc_spans:
            assert span.notes["trace_id"] == context.trace_id
            assert "server_ms" in span.notes
        # The server saw (and counted) the trace-carrying requests.
        stats = session.cachenet_stats()
        assert stats["traced_requests_total"] >= len(rpc_spans)
        session.close()
    finally:
        server.stop()


def test_cachenet_spans_dropped_from_canonical_parity():
    server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    try:
        session = Session("rotowire", cache_url=server.url)
        result = session.query(QUERY)
        assert any(span.stage.startswith("cachenet:")
                   for span in result.telemetry.spans)
        canonical = result.telemetry.canonicalize(
            result.telemetry.to_dict())
        assert not any(span["stage"].startswith("cachenet:")
                       for span in canonical["spans"])
        session.close()
    finally:
        server.stop()


# ----------------------------------------------------------------------
# Acceptance: the full chain, exported
# ----------------------------------------------------------------------

def test_serve_process_lanes_export_cachenet_child_spans(
        serve, tmp_path):  # noqa: F811
    spool = tmp_path / "traces.jsonl"
    server = CacheTierServer(bind="tcp://127.0.0.1:0").start()
    try:
        session = Session("rotowire", cache_url=server.url)
        handle = serve(session=session, workers=1,
                       lane_backend="process",
                       trace_export_file=str(spool))
        client = Client(handle)
        status, _, body = client.request(
            "POST", "/queries", {"query": QUERY})
        assert status == 202
        done = client.poll_done(body["id"])
        assert done["ok"] is True
        # The lane ran in another process; its trace came back over the
        # pipe and through the pipeline into the export spool.
        records = TraceExporter.read(str(spool))
        assert len(records) == 1
        record = records[0]
        assert record["trace_id"] == body["trace_id"]
        names = [span["name"] for span in record["spans"]]
        assert names[0] == "serve.request"
        assert "queue.wait" in names
        assert "planning" in names
        assert any(name.startswith("cachenet:") for name in names), names
        # Every child hangs off the root span of this trace.
        root_id = record["root_span_id"]
        assert all(span["parent_span_id"] == root_id
                   for span in record["spans"][1:])
        # The span events streamed to the job mirror the lane's stages.
        assert "cachenet:get" in names or "cachenet:put" in names
        session.close()
    finally:
        server.stop()


# ----------------------------------------------------------------------
# Export machinery: ring, spool rotation, slow log, pipeline
# ----------------------------------------------------------------------

def _record(trace_id: str | None = None, duration_ms: float = 5.0,
            status: str = "ok") -> dict:
    context = (TraceContext(trace_id=trace_id, span_id="ab" * 8)
               if trace_id else TraceContext.new())
    return build_trace_record(context, QUERY, None, status=status,
                              duration_ms=duration_ms)


def test_trace_buffer_evicts_and_filters():
    buffer = TraceBuffer(capacity=2)
    first = _record("aa" * 16, duration_ms=1.0)
    buffer.add(first)
    buffer.add(_record("bb" * 16, duration_ms=50.0))
    buffer.add(_record("cc" * 16, duration_ms=100.0, status="error"))
    assert len(buffer) == 2
    assert buffer.get("aa" * 16) is None           # evicted, oldest first
    assert buffer.get("bb" * 16) is not None
    slow = buffer.recent(min_duration_ms=60.0)
    assert [t["trace_id"] for t in slow] == ["cc" * 16]
    errors = buffer.recent(status="error")
    assert [t["trace_id"] for t in errors] == ["cc" * 16]


def test_exporter_rotates_at_size_cap(tmp_path):
    spool = tmp_path / "traces.jsonl"
    exporter = TraceExporter(str(spool), max_bytes=4096)
    for index in range(32):
        exporter.export(_record(f"{index:032x}"))
    assert spool.exists() and (tmp_path / "traces.jsonl.1").exists()
    live = TraceExporter.read(str(spool))
    rotated = TraceExporter.read(str(spool) + ".1")
    assert live and rotated
    # One generation kept: the two files hold a duplicate-free,
    # in-order suffix of the exports, ending at the newest record.
    ids = [int(r["trace_id"], 16) for r in rotated + live]
    assert ids == sorted(set(ids))
    assert ids[-1] == 31
    assert ids == list(range(ids[0], 32))


def test_slow_query_log_flags_and_rings():
    log = SlowQueryLog(threshold_ms=10.0, capacity=2)
    assert log.offer(_record("aa" * 16, duration_ms=5.0)) is False
    assert log.offer(_record("bb" * 16, duration_ms=15.0)) is True
    assert log.offer(_record("cc" * 16, duration_ms=20.0)) is True
    assert log.offer(_record("dd" * 16, duration_ms=30.0)) is True
    recent = log.recent()
    assert [t["trace_id"] for t in recent] == ["dd" * 16, "cc" * 16]
    assert all(t["slow"] for t in recent)


def test_pipeline_counts_into_metrics():
    from repro.obs import MetricsRegistry
    metrics = MetricsRegistry()
    pipeline = TracePipeline(slow_log=SlowQueryLog(threshold_ms=10.0),
                             metrics=metrics)
    pipeline.record(_record("aa" * 16, duration_ms=5.0))
    pipeline.record(_record("bb" * 16, duration_ms=50.0))
    counters = metrics.snapshot()["counters"]
    assert counters["traces_recorded_total"] == 2
    assert counters["slow_queries_total"] == 1


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------

def test_render_prometheus_exposes_counters_and_histograms():
    session = Session("rotowire")
    session.query(QUERY)
    text = render_prometheus(session.observability_snapshot())
    assert "# TYPE repro_queries_total counter" in text
    assert "repro_queries_total 1" in text
    assert 'le="+Inf"' in text
    assert "_seconds_bucket{" in text
    # Every sample line is name [labels] value — no stray formatting.
    for line in text.splitlines():
        if line and not line.startswith("#"):
            assert len(line.rsplit(" ", 1)) == 2
    session.close()


def test_metrics_endpoint_prometheus_format(serve):  # noqa: F811
    handle = serve()
    client = Client(handle)
    client.conn.request("GET", "/metrics?format=prometheus",
                        headers={"x-api-token": "test"})
    response = client.conn.getresponse()
    text = response.read().decode("utf-8")
    assert response.status == 200
    assert response.getheader("Content-Type").startswith(
        "text/plain; version=0.0.4")
    assert "repro_serve_requests_total" in text
    # JSON stays the default.
    status, _, body = client.request("GET", "/metrics")
    assert status == 200 and "counters" in body
    # Unknown formats are a client error, not a silent default.
    status, _, body = client.request("GET", "/metrics?format=xml")
    assert status == 400


# ----------------------------------------------------------------------
# /traces endpoints + slow-query threshold over HTTP
# ----------------------------------------------------------------------

def test_traces_endpoint_filters_and_404(serve):  # noqa: F811
    handle = serve(slow_query_ms=0.001)
    client = Client(handle)
    status, _, body = client.request("POST", "/queries", {"query": QUERY})
    assert status == 202
    client.poll_done(body["id"])

    status, _, listing = client.request("GET", "/traces")
    assert status == 200 and listing["count"] == 1
    summary = listing["traces"][0]
    assert summary["trace_id"] == body["trace_id"]
    assert summary["slow"] is True            # threshold is ~zero

    status, _, filtered = client.request(
        "GET", "/traces?min_duration_ms=1000000")
    assert status == 200 and filtered["count"] == 0
    status, _, slow = client.request("GET", "/traces?slow=1")
    assert status == 200 and slow["count"] == 1

    status, _, _body = client.request("GET", "/traces/" + "0" * 32)
    assert status == 404
    status, _, _body = client.request("GET", "/traces?limit=bogus")
    assert status == 400


# ----------------------------------------------------------------------
# Bounded STATS scrape: a wedged cache server cannot stall /metrics
# ----------------------------------------------------------------------

def test_observability_snapshot_bounded_by_hung_cache_server():
    # A listener that accepts and then never speaks: the HELLO
    # handshake read would block forever without the scrape budget.
    wedge = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    wedge.bind(("127.0.0.1", 0))
    wedge.listen(8)
    port = wedge.getsockname()[1]
    accepted = []

    def accept_loop():
        try:
            while True:
                conn, _ = wedge.accept()
                accepted.append(conn)    # keep open, say nothing
        except OSError:
            pass

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    try:
        session = Session("rotowire", cache_url=f"tcp://127.0.0.1:{port}")
        started = time.perf_counter()
        snapshot = session.observability_snapshot()
        elapsed = time.perf_counter() - started
        assert "cachenet_server" not in snapshot     # degraded, not hung
        assert elapsed < 5 * Session.CACHENET_STATS_TIMEOUT + 1.0
        session.close()
    finally:
        wedge.close()
        for conn in accepted:
            conn.close()


# ----------------------------------------------------------------------
# `repro trace` CLI over an exported spool
# ----------------------------------------------------------------------

def test_trace_cli_show_tail_top(tmp_path, capsys):
    spool = tmp_path / "traces.jsonl"
    exporter = TraceExporter(str(spool))
    exporter.export(_record("aa" * 16, duration_ms=5.0))
    exporter.export(_record("bb" * 16, duration_ms=50.0))

    assert trace_main(["show", "--file", str(spool), "aa"]) == 0
    out = capsys.readouterr().out
    assert ("aa" * 16) in out and QUERY in out

    assert trace_main(["show", "--file", str(spool)]) == 0
    assert ("bb" * 16) in capsys.readouterr().out   # newest by default

    assert trace_main(["tail", "--file", str(spool), "-n", "1"]) == 0
    assert ("bb" * 16) in capsys.readouterr().out

    assert trace_main(["top", "--file", str(spool), "-n", "1"]) == 0
    assert ("bb" * 16) in capsys.readouterr().out   # slowest first

    assert trace_main(["show", "--file", str(spool), "ff"]) == 1
    assert "no trace matching" in capsys.readouterr().err


def test_render_trace_record_shows_span_tree():
    context = TraceContext.new()
    session = Session("rotowire")
    result = session.query(QUERY, trace_context=context)
    record = build_trace_record(
        context, QUERY, result.telemetry, status="ok", duration_ms=12.5,
        root_name="query")
    text = render_trace_record(record)
    assert context.trace_id in text
    assert "planning" in text
    session.close()

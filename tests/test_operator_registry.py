"""Unit tests for the operator registry and argument validation."""

import pytest

from repro.core.interfaces import (PromptMapper, PromptPlanner,
                                   RegistryExecutor)
from repro.errors import OperatorError
from repro.operators import (ExecutionContext, OperatorCard, OperatorResult,
                             PhysicalOperator, PlotOperator, SQLOperator,
                             VisualQAOperator, build_operator,
                             operator_names)
from repro.operators.base import DEFAULT_REGISTRY, OperatorRegistry


def test_registry_contains_all_six_operators():
    names = operator_names()
    assert set(names) >= {"SQL", "Visual Question Answering",
                          "Image Select", "Text Question Answering",
                          "Python", "Plot"}


def test_build_operator_exact_and_case_insensitive():
    assert isinstance(build_operator("SQL"), SQLOperator)
    assert isinstance(build_operator("sql"), SQLOperator)
    assert isinstance(build_operator("  Plot "), PlotOperator)


def test_build_operator_tolerates_suffixed_name():
    # The model may write "SQL (Join)" for "SQL".
    assert isinstance(build_operator("SQL (Join)"), SQLOperator)


def test_build_operator_tolerates_prefix_name():
    assert isinstance(build_operator("Visual Question"), VisualQAOperator)


def test_build_operator_unknown_lists_available():
    with pytest.raises(OperatorError) as excinfo:
        build_operator("Teleport")
    message = str(excinfo.value)
    assert "unknown operator 'Teleport'" in message
    assert "SQL" in message  # the available operators are listed


def test_require_args_error_text():
    operator = PlotOperator()
    with pytest.raises(OperatorError) as excinfo:
        operator.require_args(["a", "b"], 4)
    message = str(excinfo.value)
    assert "Plot expects 4 arguments" in message
    assert "got 2" in message
    assert "(a; b)" in message


def test_require_args_strips_whitespace():
    operator = PlotOperator()
    assert operator.require_args([" a ", "b", " c", "d "], 4) == \
        ["a", "b", "c", "d"]


class _NoOpOperator(PhysicalOperator):
    card = OperatorCard(
        name="NoOp",
        purpose="Do nothing (test operator).",
        argument_format="()")

    def run(self, context: ExecutionContext, args) -> OperatorResult:
        return OperatorResult(observation="did nothing")


def test_registry_copy_is_isolated_from_default():
    registry = DEFAULT_REGISTRY.copy()
    registry.register(_NoOpOperator)
    assert "NoOp" in registry
    assert "NoOp" not in DEFAULT_REGISTRY
    assert isinstance(registry.build("noop"), _NoOpOperator)
    # The new card is advertised to mapping prompts via the registry.
    assert any(card.name == "NoOp" for card in registry.cards())
    assert not any(card.name == "NoOp" for card in DEFAULT_REGISTRY.cards())


def test_registry_register_with_explicit_card():
    registry = OperatorRegistry()
    alias = OperatorCard(name="Nothing", purpose="Alias card.",
                         argument_format="()")
    registry.register(_NoOpOperator, card=alias)
    assert registry.names() == ["Nothing"]
    assert isinstance(registry.build("Nothing"), _NoOpOperator)


def test_registry_executor_uses_custom_registry():
    registry = OperatorRegistry()
    registry.register(_NoOpOperator)
    executor = RegistryExecutor(registry)
    assert [card.name for card in executor.cards()] == ["NoOp"]


def test_engine_composes_pluggable_parts(rotowire_lake):
    """A custom executor registry flows through Session to execution."""
    from repro import Session
    from repro.core.parsing import MappingDecision

    registry = DEFAULT_REGISTRY.copy()
    registry.register(_NoOpOperator)
    executor = RegistryExecutor(registry)
    execution = executor.execute(
        MappingDecision(operator="NoOp", arguments=[]),
        ExecutionContext(tables={}))
    assert execution.operator == "NoOp"
    assert execution.result.observation == "did nothing"

    # The default prompt-driven planner/mapper still answer end-to-end
    # when composed with the widened registry.
    session = Session(rotowire_lake, executor=executor)
    result = session.query("How many players are taller than 200?")
    assert result.ok


def test_default_roles_satisfy_protocols():
    from repro import Executor, Mapper, Planner
    from repro.llm.brain import SimulatedBrain

    brain = SimulatedBrain()
    assert isinstance(PromptPlanner(brain), Planner)
    assert isinstance(PromptMapper(brain), Mapper)
    assert isinstance(RegistryExecutor(), Executor)

"""Unit tests for the operator registry and argument validation."""

import pytest

from repro.errors import OperatorError
from repro.operators import (PlotOperator, SQLOperator, VisualQAOperator,
                             build_operator, operator_names)


def test_registry_contains_all_six_operators():
    names = operator_names()
    assert set(names) >= {"SQL", "Visual Question Answering",
                          "Image Select", "Text Question Answering",
                          "Python", "Plot"}


def test_build_operator_exact_and_case_insensitive():
    assert isinstance(build_operator("SQL"), SQLOperator)
    assert isinstance(build_operator("sql"), SQLOperator)
    assert isinstance(build_operator("  Plot "), PlotOperator)


def test_build_operator_tolerates_suffixed_name():
    # The model may write "SQL (Join)" for "SQL".
    assert isinstance(build_operator("SQL (Join)"), SQLOperator)


def test_build_operator_tolerates_prefix_name():
    assert isinstance(build_operator("Visual Question"), VisualQAOperator)


def test_build_operator_unknown_lists_available():
    with pytest.raises(OperatorError) as excinfo:
        build_operator("Teleport")
    message = str(excinfo.value)
    assert "unknown operator 'Teleport'" in message
    assert "SQL" in message  # the available operators are listed


def test_require_args_error_text():
    operator = PlotOperator()
    with pytest.raises(OperatorError) as excinfo:
        operator.require_args(["a", "b"], 4)
    message = str(excinfo.value)
    assert "Plot expects 4 arguments" in message
    assert "got 2" in message
    assert "(a; b)" in message


def test_require_args_strips_whitespace():
    operator = PlotOperator()
    assert operator.require_args([" a ", "b", " c", "d "], 4) == \
        ["a", "b", "c", "d"]

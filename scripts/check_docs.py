#!/usr/bin/env python
"""Docs checker: every fenced code block runs, every intra-repo link
resolves.

Used by the CI ``docs`` job (and runnable locally):

- ``bash`` blocks: every ``repro ...`` / ``python -m repro.cli ...``
  command line is executed against the scale-1 lakes in a scratch
  directory (with a small ``queries.txt`` pre-created for the batch
  examples); other lines (``pip install``, ``pytest``, ...) are skipped.
- ``python`` blocks are executed with ``exec`` in one shared namespace
  per file, so later blocks may build on earlier ones.
- A ``<!-- docs-check: skip -->`` comment on the line directly above a
  fence skips that block (used for illustrative output and for
  benchmark invocations too heavy for CI).
- Markdown links to repository paths must exist; ``#anchor`` fragments
  must match a heading in the target file.

Exit status is non-zero on the first category of failure, with every
individual failure listed.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]

SKIP_MARKER = "<!-- docs-check: skip -->"

_FENCE_RE = re.compile(
    r"^(?P<indent>[ ]{0,3})```(?P<lang>[A-Za-z0-9_+-]*)\s*$")
_LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\((?P<target>[^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(?P<text>.+?)\s*$")

#: Sample batch file pre-created in the scratch directory so the
#: ``repro batch ... queries.txt`` examples run.
SAMPLE_QUERIES = """\
# sample workload used by the documentation examples
How many players are taller than 200?
Who is the tallest player?
List the names of players taller than 200.
"""


@dataclass
class Block:
    """One fenced code block of a documentation file."""

    path: Path
    lang: str
    start_line: int
    text: str
    skipped: bool


def extract_blocks(path: Path) -> list[Block]:
    blocks: list[Block] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    lang = ""
    start = 0
    body: list[str] = []
    skip_next = False
    for number, line in enumerate(lines, 1):
        if not in_block:
            match = _FENCE_RE.match(line)
            if match:
                in_block = True
                lang = match.group("lang").lower()
                start = number
                body = []
            elif line.strip():
                skip_next = line.strip() == SKIP_MARKER
            continue
        if line.strip() == "```":
            blocks.append(Block(path, lang, start, "\n".join(body),
                                skipped=skip_next))
            in_block = False
            skip_next = False
        else:
            body.append(line)
    return blocks


def _join_continuations(text: str) -> list[str]:
    """Logical lines with trailing-backslash continuations merged."""
    logical: list[str] = []
    pending = ""
    for line in text.splitlines():
        merged = pending + line.rstrip()
        if merged.endswith("\\"):
            pending = merged[:-1] + " "
            continue
        logical.append(merged)
        pending = ""
    if pending:
        logical.append(pending.rstrip())
    return logical


def _runnable_command(line: str) -> list[str] | None:
    """argv for a doc command line we execute, or ``None`` to skip it."""
    stripped = line.strip()
    if stripped.startswith("#") or not stripped:
        return None
    if stripped.startswith("repro "):
        return [sys.executable, "-m", "repro.cli",
                *shlex.split(stripped)[1:]]
    if stripped.startswith("python -m repro.cli"):
        return [sys.executable, *shlex.split(stripped)[1:]]
    return None


def run_bash_block(block: Block, cwd: Path, env: dict[str, str],
                   failures: list[str]) -> int:
    executed = 0
    for line in _join_continuations(block.text):
        argv = _runnable_command(line)
        if argv is None:
            continue
        executed += 1
        result = subprocess.run(argv, cwd=cwd, env=env,
                                capture_output=True, text=True,
                                timeout=600)
        if result.returncode != 0:
            failures.append(
                f"{block.path.name}:{block.start_line}: `{line.strip()}` "
                f"exited {result.returncode}\n"
                f"  stdout: {result.stdout.strip()[:400]}\n"
                f"  stderr: {result.stderr.strip()[:400]}")
    return executed


def run_python_block(block: Block, namespace: dict, cwd: Path,
                     failures: list[str]) -> int:
    previous = os.getcwd()
    os.chdir(cwd)
    try:
        exec(compile(block.text, f"{block.path.name}:{block.start_line}",
                     "exec"), namespace)
    except Exception as exc:  # noqa: BLE001 - report, don't crash
        failures.append(
            f"{block.path.name}:{block.start_line}: python block raised "
            f"{type(exc).__name__}: {exc}")
    finally:
        os.chdir(previous)
    return 1


def github_anchor(heading: str) -> str:
    """GitHub's heading → fragment rule (close enough for our docs)."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def file_anchors(path: Path) -> set[str]:
    anchors = set()
    for line in path.read_text(encoding="utf-8").splitlines():
        match = _HEADING_RE.match(line)
        if match:
            anchors.add(github_anchor(match.group("text")))
    return anchors


def check_links(failures: list[str]) -> int:
    checked = 0
    for path in DOC_FILES:
        for match in _LINK_RE.finditer(path.read_text(encoding="utf-8")):
            target = match.group("target")
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # absolute URL
                continue
            checked += 1
            base, _, fragment = target.partition("#")
            resolved = (path.parent / base).resolve() if base else path
            if base and not resolved.exists():
                failures.append(f"{path.name}: broken link {target!r} "
                                f"(no such file {base!r})")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in file_anchors(resolved):
                    failures.append(
                        f"{path.name}: broken anchor {target!r} "
                        f"(no heading #{fragment} in {resolved.name})")
    return checked


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    sys.path.insert(0, str(REPO_ROOT / "src"))

    link_failures: list[str] = []
    links = check_links(link_failures)
    print(f"[docs] checked {links} intra-repo links "
          f"({len(link_failures)} broken)")

    block_failures: list[str] = []
    commands = 0
    with tempfile.TemporaryDirectory(prefix="repro-docs-") as scratch:
        cwd = Path(scratch)
        (cwd / "queries.txt").write_text(SAMPLE_QUERIES, encoding="utf-8")
        for path in DOC_FILES:
            namespace: dict = {"__name__": "__docs__"}
            for block in extract_blocks(path):
                if block.skipped or block.lang not in ("bash", "python",
                                                       "sh", "console"):
                    continue
                if block.lang == "python":
                    commands += run_python_block(block, namespace, cwd,
                                                 block_failures)
                else:
                    commands += run_bash_block(block, cwd, env,
                                               block_failures)
    print(f"[docs] executed {commands} documentation code blocks/commands "
          f"({len(block_failures)} failed)")

    for failure in link_failures + block_failures:
        print(f"FAIL {failure}")
    return 1 if (link_failures or block_failures) else 0


if __name__ == "__main__":
    raise SystemExit(main())

from setuptools import find_packages, setup

setup(
    name="caesura-repro",
    version="0.1.0",
    description=("Reproduction of CAESURA: language models as multi-modal "
                 "query planners (CIDR'24)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "networkx",
        "numpy",
        "scipy",
    ],
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
